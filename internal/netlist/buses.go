package netlist

import "fmt"

// Datapath macros. All buses are LSB-first []Node.
//
// Misuse of a macro (mismatched bus widths, a MuxN whose option count
// does not match its select bus) is recorded as an error-severity
// Diagnostic on the builder and surfaces from Build — the same path as
// structural defects — instead of panicking mid-construction. The macro
// still returns a bus of the expected width (padded with constant zeros)
// so chained construction can continue to Build, where the diagnostics
// are reported together.

// defect records a construction-time diagnostic surfaced by Build.
func (b *Builder) defect(code, format string, args ...any) {
	b.diags = append(b.diags, Diagnostic{SevError, code, Node(-1),
		fmt.Sprintf(format, args...)})
}

// sameLen checks that two buses match in width, recording a "bus-width"
// diagnostic otherwise. It reports whether the widths matched.
func (b *Builder) sameLen(a, c []Node, op string) bool {
	if len(a) != len(c) {
		b.defect("bus-width", "%s: bus width mismatch %d vs %d", op, len(a), len(c))
		return false
	}
	return true
}

// padTo extends a bus to width with constant zeros (recovery filler after
// a width-mismatch diagnostic; never emitted on well-formed circuits).
func (b *Builder) padTo(bus []Node, width int) []Node {
	for len(bus) < width {
		bus = append(bus, b.Const(false))
	}
	return bus[:width]
}

// ConstBus returns a bus holding the constant value, LSB first.
func (b *Builder) ConstBus(width int, value uint64) []Node {
	bus := make([]Node, width)
	for i := range bus {
		bus[i] = b.Const(value>>i&1 == 1)
	}
	return bus
}

// BufBus buffers every bit (distinct fault sites for a routed bus).
func (b *Builder) BufBus(a []Node) []Node {
	out := make([]Node, len(a))
	for i, n := range a {
		out[i] = b.Buf(n)
	}
	return out
}

// NotBus inverts every bit.
func (b *Builder) NotBus(a []Node) []Node {
	out := make([]Node, len(a))
	for i, n := range a {
		out[i] = b.Not(n)
	}
	return out
}

// XorBus returns a⊕c bitwise.
func (b *Builder) XorBus(a, c []Node) []Node {
	if !b.sameLen(a, c, "XorBus") {
		c = b.padTo(c, len(a))
	}
	out := make([]Node, len(a))
	for i := range a {
		out[i] = b.Xor(a[i], c[i])
	}
	return out
}

// AndBus returns a∧c bitwise.
func (b *Builder) AndBus(a, c []Node) []Node {
	if !b.sameLen(a, c, "AndBus") {
		c = b.padTo(c, len(a))
	}
	out := make([]Node, len(a))
	for i := range a {
		out[i] = b.And(a[i], c[i])
	}
	return out
}

// AndNode ANDs a single enable into every bit of the bus.
func (b *Builder) AndNode(a []Node, en Node) []Node {
	out := make([]Node, len(a))
	for i := range a {
		out[i] = b.And(a[i], en)
	}
	return out
}

// MuxBus returns sel ? hi : lo per bit.
func (b *Builder) MuxBus(sel Node, lo, hi []Node) []Node {
	if !b.sameLen(lo, hi, "MuxBus") {
		hi = b.padTo(hi, len(lo))
	}
	out := make([]Node, len(lo))
	for i := range lo {
		out[i] = b.Mux(sel, lo[i], hi[i])
	}
	return out
}

// MuxN selects options[sel] with a binary select bus (len(options) must be
// a power of two and equal 1<<len(sel)).
func (b *Builder) MuxN(sel []Node, options [][]Node) []Node {
	if len(options) != 1<<len(sel) {
		b.defect("muxn-arity", "MuxN with %d options and %d select bits",
			len(options), len(sel))
		if len(options) == 0 {
			return nil
		}
		return b.BufBus(options[0])
	}
	if len(options) == 1 {
		return options[0]
	}
	half := len(options) / 2
	lo := b.MuxN(sel[:len(sel)-1], options[:half])
	hi := b.MuxN(sel[:len(sel)-1], options[half:])
	return b.MuxBus(sel[len(sel)-1], lo, hi)
}

// Adder returns a ripple-carry a+c+cin, plus the carry out.
func (b *Builder) Adder(a, c []Node, cin Node) (sum []Node, cout Node) {
	if !b.sameLen(a, c, "Adder") {
		c = b.padTo(c, len(a))
	}
	sum = make([]Node, len(a))
	carry := cin
	for i := range a {
		axc := b.Xor(a[i], c[i])
		sum[i] = b.Xor(axc, carry)
		carry = b.Or(b.And(a[i], c[i]), b.And(axc, carry))
	}
	return sum, carry
}

// Inc returns a+1.
func (b *Builder) Inc(a []Node) []Node {
	sum, _ := b.Adder(a, b.ConstBus(len(a), 0), b.Const(true))
	return sum
}

// EqConst returns a == value.
func (b *Builder) EqConst(a []Node, value uint64) Node {
	acc := b.Const(true)
	for i, n := range a {
		bit := n
		if value>>i&1 == 0 {
			bit = b.Not(n)
		}
		acc = b.And(acc, bit)
	}
	return acc
}

// LtConst returns a < value (unsigned).
func (b *Builder) LtConst(a []Node, value uint64) Node {
	// a < v  ⇔  scanning from MSB: first position where they differ has
	// a=0, v=1.
	lt := b.Const(false)
	eq := b.Const(true)
	for i := len(a) - 1; i >= 0; i-- {
		vbit := value>>i&1 == 1
		if vbit {
			lt = b.Or(lt, b.And(eq, b.Not(a[i])))
			eq = b.And(eq, a[i])
		} else {
			eq = b.And(eq, b.Not(a[i]))
		}
	}
	return lt
}

// Eq returns a == c.
func (b *Builder) Eq(a, c []Node) Node {
	if !b.sameLen(a, c, "Eq") {
		c = b.padTo(c, len(a))
	}
	acc := b.Const(true)
	for i := range a {
		acc = b.And(acc, b.Not(b.Xor(a[i], c[i])))
	}
	return acc
}

// Decode returns the one-hot decode of the select bus (width 1<<len(sel)).
func (b *Builder) Decode(sel []Node) []Node {
	n := 1 << len(sel)
	out := make([]Node, n)
	for v := 0; v < n; v++ {
		out[v] = b.EqConst(sel, uint64(v))
	}
	return out
}

// Encode returns the binary encoding of a one-hot input (undefined when
// more than one bit is set).
func (b *Builder) Encode(onehot []Node) []Node {
	width := 0
	for 1<<width < len(onehot) {
		width++
	}
	out := make([]Node, width)
	for bit := 0; bit < width; bit++ {
		acc := b.Const(false)
		for v, n := range onehot {
			if v>>bit&1 == 1 {
				acc = b.Or(acc, n)
			}
		}
		out[bit] = acc
	}
	return out
}

// OrAll reduces a bus with OR.
func (b *Builder) OrAll(a []Node) Node {
	acc := b.Const(false)
	for _, n := range a {
		acc = b.Or(acc, n)
	}
	return acc
}

// Register declares a width-bit register; returns its outputs. Wire next
// state with SetRegister.
func (b *Builder) Register(width int) []Node {
	bus := make([]Node, width)
	for i := range bus {
		bus[i] = b.DFF()
	}
	return bus
}

// SetRegister connects the register's next state, optionally gated by an
// enable (nil = always load).
func (b *Builder) SetRegister(q, d []Node, en Node) {
	if !b.sameLen(q, d, "SetRegister") {
		d = b.padTo(d, len(q))
	}
	for i := range q {
		next := d[i]
		if en >= 0 {
			next = b.Mux(en, q[i], d[i])
		}
		b.SetDFF(q[i], next)
	}
}

// NoEnable is the enable value meaning "always load" for SetRegister.
const NoEnable = Node(-1)

// RotatePriority builds a rotating-priority (round-robin) arbiter: grants
// the first request at or after lastGrant+1 (cyclically). requests is
// one-hot-in/one-hot-out; lastGrant is a binary register bus.
func (b *Builder) RotatePriority(requests []Node, lastGrant []Node) (grant []Node) {
	n := len(requests)
	grant = make([]Node, n)
	lastOneHot := b.Decode(lastGrant)
	if len(lastOneHot) < n {
		panic("netlist: lastGrant too narrow for request vector")
	}
	// startAt[i] = 1 when the rotation begins at i (lastGrant == i-1).
	for i := 0; i < n; i++ {
		grant[i] = b.Const(false)
	}
	// For each possible start s, grant the first request in s, s+1, ...
	for s := 0; s < n; s++ {
		start := lastOneHot[(s+n-1)%n]
		taken := b.Const(false)
		for k := 0; k < n; k++ {
			i := (s + k) % n
			g := b.And(b.And(start, requests[i]), b.Not(taken))
			grant[i] = b.Or(grant[i], g)
			taken = b.Or(taken, requests[i])
		}
	}
	return grant
}
