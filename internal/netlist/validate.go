package netlist

import (
	"fmt"
	"strings"
)

// Severity grades a structural diagnostic.
type Severity uint8

const (
	// SevError marks a defect that makes the netlist unusable (Build fails).
	SevError Severity = iota
	// SevWarn marks suspicious-but-simulable structure (dead logic).
	SevWarn
	// SevInfo carries structural statistics.
	SevInfo
)

var sevNames = [...]string{"error", "warn", "info"}

func (s Severity) String() string {
	if int(s) < len(sevNames) {
		return sevNames[s]
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// Diagnostic is one finding of the structural checkers. Code is a stable
// machine-readable identifier ("comb-cycle", "floating-dff", ...); Node is
// the offending net where one exists (-1 otherwise).
type Diagnostic struct {
	Severity Severity
	Code     string
	Node     Node
	Msg      string
}

func (d Diagnostic) String() string {
	if d.Node >= 0 {
		return fmt.Sprintf("%s[%s] node %d: %s", d.Severity, d.Code, d.Node, d.Msg)
	}
	return fmt.Sprintf("%s[%s]: %s", d.Severity, d.Code, d.Msg)
}

// BuildError is the structured error returned by Builder.Build when the
// circuit is structurally invalid. Diags holds every error-severity
// diagnostic found.
type BuildError struct {
	Name  string
	Diags []Diagnostic
}

func (e *BuildError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "netlist %s: %d structural error(s)", e.Name, len(e.Diags))
	for _, d := range e.Diags {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return b.String()
}

// HasCode reports whether any diagnostic carries the code.
func (e *BuildError) HasCode(code string) bool {
	for _, d := range e.Diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// ValidateNetlist runs the structural checks on a netlist value without
// panicking, so it is safe on hand-constructed (possibly broken) circuits:
// out-of-range node references, floating DFF next-state inputs, misdeclared
// primary inputs/outputs, and combinational cycles. Error-severity
// diagnostics mean the circuit cannot be evaluated.
func ValidateNetlist(nl *Netlist) []Diagnostic {
	var diags []Diagnostic
	n := len(nl.Cells)
	inRange := func(id Node) bool { return id >= 0 && int(id) < n }

	for id, c := range nl.Cells {
		nin := c.Kind.NumIns()
		for i := 0; i < nin; i++ {
			ref := c.In[i]
			if c.Kind == KDFF && ref < 0 {
				diags = append(diags, Diagnostic{SevError, "floating-dff", Node(id),
					"DFF has no next-state input (SetDFF never called)"})
				continue
			}
			if !inRange(ref) {
				diags = append(diags, Diagnostic{SevError, "dangling-ref", Node(id),
					fmt.Sprintf("%s input %d references node %d (of %d cells)", c.Kind, i, ref, n)})
			}
		}
	}
	for i, id := range nl.Inputs {
		if !inRange(id) || nl.Cells[id].Kind != KInput {
			diags = append(diags, Diagnostic{SevError, "bad-input", id,
				fmt.Sprintf("declared primary input %d is not an INPUT cell", i)})
		}
	}
	for _, o := range nl.Outputs {
		if !inRange(o.Node) {
			diags = append(diags, Diagnostic{SevError, "bad-output", o.Node,
				fmt.Sprintf("output %s[%d] references node %d (of %d cells)", o.Field, o.Bit, o.Node, n)})
		}
	}
	if len(diags) > 0 {
		// References are broken: the cycle walk below would index out of
		// range, and the circuit is already unbuildable.
		return diags
	}

	// Combinational cycle detection: iterative three-color DFS over the
	// combinational edges (inputs, constants and DFF outputs are sources).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, n)
	type frame struct {
		id   Node
		next int
	}
	for root := 0; root < n; root++ {
		if color[root] != white {
			continue
		}
		stack := []frame{{Node(root), 0}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			c := &nl.Cells[f.id]
			if c.Kind == KInput || c.Kind == KConst || c.Kind == KDFF {
				color[f.id] = black
				stack = stack[:len(stack)-1]
				continue
			}
			if f.next == 0 {
				color[f.id] = gray
			}
			if f.next < c.Kind.NumIns() {
				child := c.In[f.next]
				f.next++
				switch color[child] {
				case white:
					stack = append(stack, frame{child, 0})
				case gray:
					diags = append(diags, Diagnostic{SevError, "comb-cycle", child,
						fmt.Sprintf("combinational cycle through %s node %d", nl.Cells[child].Kind, child)})
					color[child] = black // report each cycle entry once
				}
				continue
			}
			color[f.id] = black
			stack = stack[:len(stack)-1]
		}
	}
	return diags
}

// errorDiags filters a diagnostic list down to error severity.
func errorDiags(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}
