// Branch-free cell kernels: every primitive gate evaluates as a 4-entry
// truth table applied with mask arithmetic, so the simulation inner loops
// (Simulator.Eval here, the event engine's delta sweep in
// gatesim/engine) run one straight-line expression per gate instead of a
// per-gate switch dispatch — the GATSPI-style formulation of gate
// evaluation as table lookups over packed lanes.
//
// Encoding: a 2-input function f(a, b) is the 4-bit table t with bit
// j = f(j&1, j>>1) — index j = (b<<1)|a. Lifting f to 64 lanes at once
// needs each table bit as a full-width mask, which is what KernelMasks
// provides: KernelMasks[t][j] is all-ones when bit j of t is set. The
// lane-parallel evaluation is then
//
//	m := &KernelMasks[t]
//	v := ((m[0]&^a | m[1]&a) &^ b) | ((m[2]&^a | m[3]&a) & b)
//
// — pure AND/OR/ANDNOT, no branches, no data-dependent control flow.
// MUX needs two tables (output = In[0] when sel=0, In[1] when sel=1):
// the lo table selects across (a, b) with sel low, the hi table with sel
// high, blended by v = vlo&^sel | vhi&sel. Non-MUX cells carry lo == hi,
// making the blend the identity regardless of the (unused) third input.
package netlist

// Truth tables for the 2-input kernel encoding (bit j = f(j&1, j>>1)).
// Unary cells duplicate their input into both operands, so only the
// diagonal entries (j = 0, 3) are ever selected.
const (
	tabBuf  = 0xA // f = a
	tabInv  = 0x5 // f = ^a
	tabAnd  = 0x8
	tabOr   = 0xE
	tabXor  = 0x6
	tabNand = 0x7
	tabNor  = 0x1
	tabSelA = 0xA // MUX lo half: output follows In[0]
	tabSelB = 0xC // MUX hi half: output follows In[1]
)

// KernelMasks spreads each 4-bit truth table into lane masks:
// KernelMasks[t][j] = ^0 when bit j of t is set, else 0. 512 bytes,
// resident in L1 for the whole campaign.
var KernelMasks [16][4]uint64

// ANFMasks holds each table's Reed-Muller (algebraic normal form)
// coefficients as lane masks: f(a, b) = c0 ^ c1·a ^ c2·b ^ c3·a·b with
// c0 = t0, c1 = t0^t1, c2 = t0^t2, c3 = t0^t1^t2^t3. The lane-parallel
// evaluation
//
//	m := &ANFMasks[t]
//	v := m[0] ^ m[1]&a ^ m[2]&b ^ m[3]&(a&b)
//
// costs six logic ops against the mask form's ten — the event engine's
// sweep uses it for every lo==hi gate. Like KernelMasks, 512 bytes and
// L1-resident.
var ANFMasks [16][4]uint64

func init() {
	for t := range KernelMasks {
		for j := range KernelMasks[t] {
			KernelMasks[t][j] = -uint64(t >> j & 1)
		}
		t0, t1, t2, t3 := t&1, t>>1&1, t>>2&1, t>>3&1
		ANFMasks[t][0] = -uint64(t0)
		ANFMasks[t][1] = -uint64(t0 ^ t1)
		ANFMasks[t][2] = -uint64(t0 ^ t2)
		ANFMasks[t][3] = -uint64(t0 ^ t1 ^ t2 ^ t3)
	}
}

// Kernels is a netlist's precompiled branch-free evaluation program, built
// once by Build and shared by every simulator bound to the netlist.
//
// Two views of the same tables:
//
//   - The P-arrays are the dense program, parallel to EvalOrder():
//     Simulator.Eval streams through them front to back.
//   - The K-arrays are indexed by node: the event engine's levelized
//     sweep evaluates scheduled nodes in arbitrary order.
//
// Source cells (inputs, constants, DFFs) never evaluate through the
// kernels — their K-entries are zeroed and no P-entry exists. Unused
// operand slots alias In[0], so every load is in-bounds and the mask
// arithmetic ignores the duplicate.
type Kernels struct {
	// Dense program, parallel to EvalOrder().
	PIn0, PIn1, PIn2 []int32
	POut             []int32
	PLo, PHi         []uint8

	// By-node tables for the event engine.
	KIn0, KIn1, KIn2 []int32
	KLo, KHi         []uint8

	// KCells packs the by-node tables into one 16-byte record per node
	// for the event engine's sparse sweep: a scheduled gate's whole
	// kernel — operands and both tables — arrives in a single cache
	// line instead of five parallel-array loads.
	KCells []KCell

	// Constant cells and their broadcast lane words, replacing the
	// per-Eval scan over all cells.
	ConstNode []Node
	ConstWord []uint64
}

// KCell is one node's packed kernel record (see Kernels.KCells).
type KCell struct {
	In0, In1, In2 int32
	Lo, Hi        uint8
	_             [2]byte
}

// kernelOf returns the kernel encoding of one cell: operand nodes and the
// lo/hi truth tables. ok is false for source cells (no kernel).
func kernelOf(c *Cell) (in0, in1, in2 Node, lo, hi uint8, ok bool) {
	a, b, sel := c.In[0], c.In[0], c.In[0]
	var t uint8
	switch c.Kind {
	case KBuf:
		t = tabBuf
	case KInv:
		t = tabInv
	case KAnd:
		t, b = tabAnd, c.In[1]
	case KOr:
		t, b = tabOr, c.In[1]
	case KXor:
		t, b = tabXor, c.In[1]
	case KNand:
		t, b = tabNand, c.In[1]
	case KNor:
		t, b = tabNor, c.In[1]
	case KMux:
		b, sel = c.In[1], c.In[2]
		return a, b, sel, tabSelA, tabSelB, true
	default: // KInput, KConst, KDFF: seeded, never evaluated
		return 0, 0, 0, 0, 0, false
	}
	return a, b, sel, t, t, true
}

// buildKernels compiles the netlist's kernel tables. Called by Build once
// nl.order exists.
func buildKernels(nl *Netlist) *Kernels {
	n := len(nl.Cells)
	k := &Kernels{
		KIn0: make([]int32, n), KIn1: make([]int32, n), KIn2: make([]int32, n),
		KLo: make([]uint8, n), KHi: make([]uint8, n),
	}
	for id := range nl.Cells {
		c := &nl.Cells[id]
		if c.Kind == KConst {
			var w uint64
			if c.In[0] == 1 {
				w = ^uint64(0)
			}
			k.ConstNode = append(k.ConstNode, Node(id))
			k.ConstWord = append(k.ConstWord, w)
			continue
		}
		in0, in1, in2, lo, hi, ok := kernelOf(c)
		if !ok {
			continue
		}
		k.KIn0[id], k.KIn1[id], k.KIn2[id] = int32(in0), int32(in1), int32(in2)
		k.KLo[id], k.KHi[id] = lo, hi
	}
	k.KCells = make([]KCell, n)
	for id := range k.KCells {
		k.KCells[id] = KCell{
			In0: k.KIn0[id], In1: k.KIn1[id], In2: k.KIn2[id],
			Lo: k.KLo[id], Hi: k.KHi[id],
		}
	}
	m := len(nl.order)
	k.PIn0 = make([]int32, m)
	k.PIn1 = make([]int32, m)
	k.PIn2 = make([]int32, m)
	k.POut = make([]int32, m)
	k.PLo = make([]uint8, m)
	k.PHi = make([]uint8, m)
	for i, id := range nl.order {
		k.PIn0[i], k.PIn1[i], k.PIn2[i] = k.KIn0[id], k.KIn1[id], k.KIn2[id]
		k.POut[i] = int32(id)
		k.PLo[i], k.PHi[i] = k.KLo[id], k.KHi[id]
	}
	return k
}

// Kernels returns the netlist's precompiled branch-free evaluation
// program. Callers must not mutate it.
func (n *Netlist) Kernels() *Kernels { return n.kern }
