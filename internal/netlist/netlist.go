// Package netlist provides the gate-level substrate of the reproduction: a
// structural netlist representation (primitive cells + D flip-flops), a
// builder with datapath macros (adders, comparators, muxes, arbiters), and
// a 64-way bit-parallel stuck-at fault simulator.
//
// The units under test (warp scheduler controller, fetch, decoder — package
// units) are synthesized onto this substrate; package gatesim runs the
// exhaustive stuck-at campaigns over per-instruction exciting patterns,
// standing in for the paper's commercial logic simulator and 15nm-library
// netlists.
package netlist

//vetsim:deterministic

import "fmt"

// Node identifies a net (a cell output) within a netlist.
type Node int32

// CellKind enumerates the primitive cells.
type CellKind uint8

const (
	KInput CellKind = iota // primary input
	KConst                 // constant (In[0]==1 means logic 1)
	KBuf
	KInv
	KAnd
	KOr
	KXor
	KNand
	KNor
	KMux // In: a, b, sel → sel ? b : a
	KDFF // state element; In[0] is the next-state net
)

var kindNames = [...]string{
	"INPUT", "CONST", "BUF", "INV", "AND", "OR", "XOR", "NAND", "NOR", "MUX", "DFF",
}

func (k CellKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("CellKind(%d)", uint8(k))
}

// Cell is one gate instance. Node i's driver is Cells[i].
type Cell struct {
	Kind CellKind
	In   [3]Node
}

// Output is a named, classified primary output bit. Field groups the bits
// that belong to one architectural signal (e.g. "rd", "active_mask"); Bit
// is the position within that field. The fault-to-error-model classifier
// keys on Field.
type Output struct {
	Field string
	Bit   int
	Node  Node
}

// Netlist is an immutable gate-level circuit.
type Netlist struct {
	Name    string
	Cells   []Cell
	Inputs  []Node   // primary input nodes, in declaration order
	InNames []string // parallel to Inputs
	Outputs []Output
	DFFs    []Node // DFF cell nodes, in declaration order

	order []Node   // combinational evaluation order (excludes inputs, consts, DFFs)
	kern  *Kernels // branch-free evaluation program, compiled by Build
}

// NumCells reports the gate count (including inputs and DFFs).
func (n *Netlist) NumCells() int { return len(n.Cells) }

// NumFaults reports the size of the collapsed stuck-at fault list
// (two faults per cell output).
func (n *Netlist) NumFaults() int { return 2 * len(n.Cells) }

// OutputFields returns the distinct output field names in declaration
// order.
func (n *Netlist) OutputFields() []string {
	seen := map[string]bool{}
	var out []string
	for _, o := range n.Outputs {
		if !seen[o.Field] {
			seen[o.Field] = true
			out = append(out, o.Field)
		}
	}
	return out
}

// Stats returns a one-line summary.
func (n *Netlist) Stats() string {
	return fmt.Sprintf("%s: %d cells (%d inputs, %d DFFs, %d outputs), %d stuck-at faults",
		n.Name, len(n.Cells), len(n.Inputs), len(n.DFFs), len(n.Outputs), n.NumFaults())
}

// EvalOrder returns the combinational cells in dependency order (inputs,
// constants and DFFs excluded). Static analyses use it to sweep the
// circuit the same way Eval does. Callers must not mutate the slice.
func (n *Netlist) EvalOrder() []Node { return n.order }

// Builder constructs a Netlist. Wiring methods panic on out-of-range node
// arguments (programming errors at construction time); whole-circuit
// defects — combinational cycles, unwired DFFs, misused datapath macros
// (bus width mismatches, MuxN arity) — surface as a structured
// *BuildError from Build, or a panic from MustBuild.
type Builder struct {
	name    string
	cells   []Cell
	inputs  []Node
	inNames []string
	outputs []Output
	dffs    []Node
	const0  Node
	const1  Node
	hasC0   bool
	hasC1   bool
	diags   []Diagnostic // macro-misuse findings, reported by Build
}

// NewBuilder starts a netlist.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

func (b *Builder) add(c Cell) Node {
	b.cells = append(b.cells, c)
	return Node(len(b.cells) - 1)
}

func (b *Builder) check(n Node) {
	if n < 0 || int(n) >= len(b.cells) {
		panic(fmt.Sprintf("netlist %s: dangling node %d", b.name, n))
	}
}

// Input declares a primary input.
func (b *Builder) Input(name string) Node {
	n := b.add(Cell{Kind: KInput})
	b.inputs = append(b.inputs, n)
	b.inNames = append(b.inNames, name)
	return n
}

// InputBus declares a multi-bit input, LSB first.
func (b *Builder) InputBus(name string, width int) []Node {
	bus := make([]Node, width)
	for i := range bus {
		bus[i] = b.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// Const returns a constant-0 or constant-1 net (shared).
func (b *Builder) Const(v bool) Node {
	if v {
		if !b.hasC1 {
			b.const1 = b.add(Cell{Kind: KConst, In: [3]Node{1}})
			b.hasC1 = true
		}
		return b.const1
	}
	if !b.hasC0 {
		b.const0 = b.add(Cell{Kind: KConst})
		b.hasC0 = true
	}
	return b.const0
}

// Not returns ¬a.
func (b *Builder) Not(a Node) Node {
	b.check(a)
	return b.add(Cell{Kind: KInv, In: [3]Node{a}})
}

// Buf returns a buffered copy of a (a distinct fault site).
func (b *Builder) Buf(a Node) Node {
	b.check(a)
	return b.add(Cell{Kind: KBuf, In: [3]Node{a}})
}

// And returns a∧b.
func (b *Builder) And(a, c Node) Node {
	b.check(a)
	b.check(c)
	return b.add(Cell{Kind: KAnd, In: [3]Node{a, c}})
}

// Or returns a∨b.
func (b *Builder) Or(a, c Node) Node {
	b.check(a)
	b.check(c)
	return b.add(Cell{Kind: KOr, In: [3]Node{a, c}})
}

// Xor returns a⊕b.
func (b *Builder) Xor(a, c Node) Node {
	b.check(a)
	b.check(c)
	return b.add(Cell{Kind: KXor, In: [3]Node{a, c}})
}

// Nand returns ¬(a∧b).
func (b *Builder) Nand(a, c Node) Node {
	b.check(a)
	b.check(c)
	return b.add(Cell{Kind: KNand, In: [3]Node{a, c}})
}

// Nor returns ¬(a∨b).
func (b *Builder) Nor(a, c Node) Node {
	b.check(a)
	b.check(c)
	return b.add(Cell{Kind: KNor, In: [3]Node{a, c}})
}

// Mux returns sel ? hi : lo.
func (b *Builder) Mux(sel, lo, hi Node) Node {
	b.check(sel)
	b.check(lo)
	b.check(hi)
	return b.add(Cell{Kind: KMux, In: [3]Node{lo, hi, sel}})
}

// DFF declares a state element; wire its next-state input later with
// SetDFF. Reading the returned node yields the current state.
func (b *Builder) DFF() Node {
	n := b.add(Cell{Kind: KDFF, In: [3]Node{-1}})
	b.dffs = append(b.dffs, n)
	return n
}

// SetDFF connects the next-state net of a DFF created by DFF().
func (b *Builder) SetDFF(q, d Node) {
	b.check(q)
	b.check(d)
	if b.cells[q].Kind != KDFF {
		panic(fmt.Sprintf("netlist %s: SetDFF on non-DFF node %d", b.name, q))
	}
	b.cells[q].In[0] = d
}

// Output declares a named single-bit output.
func (b *Builder) Output(field string, bit int, n Node) {
	b.check(n)
	b.outputs = append(b.outputs, Output{Field: field, Bit: bit, Node: n})
}

// OutputBus declares a multi-bit output field, LSB first.
func (b *Builder) OutputBus(field string, bus []Node) {
	for i, n := range bus {
		b.Output(field, i, n)
	}
}

// Build finalizes the netlist: validates the structure (DFF wiring,
// combinational cycles, node references) and computes the combinational
// evaluation order. Structural defects — including datapath-macro misuse
// recorded during construction — return a *BuildError carrying one
// Diagnostic per finding.
func (b *Builder) Build() (*Netlist, error) {
	nl := &Netlist{
		Name: b.name, Cells: b.cells, Inputs: b.inputs, InNames: b.inNames,
		Outputs: b.outputs, DFFs: b.dffs,
	}
	diags := append(errorDiags(b.diags), errorDiags(ValidateNetlist(nl))...)
	if len(diags) > 0 {
		return nil, &BuildError{Name: b.name, Diags: diags}
	}
	nl.order = topoOrder(nl)
	nl.kern = buildKernels(nl)
	return nl, nil
}

// MustBuild is Build for setup-time construction: it panics on a
// structurally invalid circuit. The unit builders use it — their netlists
// are fixed at compile time, so fail-fast is the right trade-off.
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}

// topoOrder returns the combinational cells in dependency order. Inputs,
// constants and DFFs are sources. Callers validate the netlist first
// (ValidateNetlist), so cycles cannot occur here.
func topoOrder(nl *Netlist) []Node {
	n := len(nl.Cells)
	state := make([]uint8, n) // 0 unvisited, 1 visiting, 2 done
	order := make([]Node, 0, n)

	var visit func(Node)
	visit = func(id Node) {
		c := &nl.Cells[id]
		if c.Kind == KInput || c.Kind == KConst || c.Kind == KDFF {
			state[id] = 2
			return
		}
		switch state[id] {
		case 1:
			panic(fmt.Sprintf("netlist %s: combinational cycle through node %d", nl.Name, id))
		case 2:
			return
		}
		state[id] = 1
		nin := c.Kind.NumIns()
		for i := 0; i < nin; i++ {
			visit(c.In[i])
		}
		state[id] = 2
		order = append(order, id)
	}
	// Visit everything reachable from outputs and DFF next-state nets, plus
	// any remaining cells (so dangling logic still simulates and counts as
	// fault sites).
	for _, o := range nl.Outputs {
		visit(o.Node)
	}
	for _, q := range nl.DFFs {
		visit(nl.Cells[q].In[0])
	}
	for id := 0; id < n; id++ {
		if state[id] == 0 {
			visit(Node(id))
		}
	}
	return order
}

// NumIns reports how many In slots the cell kind reads. KConst is 0: its
// In[0] encodes the constant value, not a node reference.
func (k CellKind) NumIns() int {
	switch k {
	case KInput, KConst:
		return 0
	case KBuf, KInv:
		return 1
	case KMux:
		return 3
	case KDFF:
		return 1
	default:
		return 2
	}
}
