package netlist

import (
	"fmt"
	"math/rand"
)

// RandomSpec sizes a randomly generated netlist (RandomNetlist). The
// generator backs the differential and fuzz harnesses that hold the
// event-driven campaign engine byte-identical to full evaluation: random
// circuits exercise gate-kind, fanout and sequential-feedback shapes the
// hand-built units never reach.
type RandomSpec struct {
	Inputs  int // primary inputs (≥1)
	Gates   int // combinational gates
	DFFs    int // state elements (0 for a pure combinational circuit)
	Outputs int // output bits, split across two fields ("data", "flow")
}

// RandomNetlist builds a pseudo-random synchronous circuit from a seeded
// rng. The same rng state always yields the same circuit. DFF next-state
// nets are drawn from the whole pool, so feedback through state (a DFF
// observing logic fed by its own output) occurs routinely. Outputs are
// split across a "data" field and a "flow" field so campaigns exercise
// both the software-error and the hang classification paths.
func RandomNetlist(rng *rand.Rand, spec RandomSpec) *Netlist {
	if spec.Inputs < 1 {
		spec.Inputs = 1
	}
	if spec.Outputs < 1 {
		spec.Outputs = 1
	}
	b := NewBuilder("random")
	pool := make([]Node, 0, spec.Inputs+spec.DFFs+spec.Gates+2)
	for i := 0; i < spec.Inputs; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("in[%d]", i)))
	}
	dffs := make([]Node, spec.DFFs)
	for i := range dffs {
		dffs[i] = b.DFF()
		pool = append(pool, dffs[i])
	}
	// An occasional constant leg exercises the collapser's constant rules.
	pool = append(pool, b.Const(false), b.Const(true))
	pick := func() Node { return pool[rng.Intn(len(pool))] }
	for g := 0; g < spec.Gates; g++ {
		x, y, z := pick(), pick(), pick()
		var n Node
		switch rng.Intn(9) {
		case 0:
			n = b.Buf(x)
		case 1:
			n = b.Not(x)
		case 2:
			n = b.And(x, y)
		case 3:
			n = b.Or(x, y)
		case 4:
			n = b.Xor(x, y)
		case 5:
			n = b.Nand(x, y)
		case 6:
			n = b.Nor(x, y)
		default:
			n = b.Mux(z, x, y)
		}
		pool = append(pool, n)
	}
	for _, q := range dffs {
		b.SetDFF(q, pick())
	}
	dataBits := (spec.Outputs + 1) / 2
	for i := 0; i < spec.Outputs; i++ {
		if i < dataBits {
			b.Output("data", i, pick())
		} else {
			b.Output("flow", i-dataBits, pick())
		}
	}
	return b.MustBuild()
}
