package netlist

import "fmt"

// FaultKind selects the defect model of a fault site.
type FaultKind uint8

const (
	// StuckAt forces the node to the Stuck level (the paper's model).
	StuckAt FaultKind = iota
	// Delay makes the node present its previous-cycle value: a slow path
	// that misses the capture edge (the paper lists delay faults as a
	// natural extension of the methodology).
	Delay
)

// Fault is a fault on a cell output.
type Fault struct {
	Node  Node
	Kind  FaultKind
	Stuck bool // for StuckAt: false = stuck-at-0, true = stuck-at-1
}

func (f Fault) String() string {
	if f.Kind == Delay {
		return fmt.Sprintf("delay@%d", f.Node)
	}
	v := 0
	if f.Stuck {
		v = 1
	}
	return fmt.Sprintf("sa%d@%d", v, f.Node)
}

// FaultList returns the collapsed stuck-at list: both polarities on every
// cell output.
func FaultList(nl *Netlist) []Fault {
	out := make([]Fault, 0, 2*len(nl.Cells))
	for id := range nl.Cells {
		out = append(out, Fault{Node: Node(id), Stuck: false},
			Fault{Node: Node(id), Stuck: true})
	}
	return out
}

// DelayFaultList returns one delay fault per cell output.
func DelayFaultList(nl *Netlist) []Fault {
	out := make([]Fault, 0, len(nl.Cells))
	for id := range nl.Cells {
		out = append(out, Fault{Node: Node(id), Kind: Delay})
	}
	return out
}

// Simulator evaluates a netlist 64 machines at a time: bit k of every
// signal word is the value in machine k. All machines see the same input
// pattern; they differ only in the injected fault, which makes exhaustive
// stuck-at campaigns 64x cheaper than serial simulation (the classic
// parallel fault simulation technique).
type Simulator struct {
	nl       *Netlist
	kern     *Kernels // branch-free evaluation program (nl.Kernels())
	vals     []uint64 // current node values
	state    []uint64 // DFF state, indexed like nl.DFFs
	in       []uint64 // pending input values (broadcast masks)
	laneMask uint64   // lanes SetInput writes; ^0 broadcasts (the default)

	// Per-group fault overrides, dense by node: setArr bits are forced to
	// 1, clrArr bits to 0, and delayArr bits take the node's previous-
	// evaluation value in the lane owning the fault.
	setArr, clrArr, delayArr []uint64
	rawPrev                  []uint64 // pre-delay node values of the last Eval
	hasFaults                bool
	hasDelay                 bool
}

// NewSimulator builds a simulator with all state reset to 0.
func NewSimulator(nl *Netlist) *Simulator {
	kern := nl.kern
	if kern == nil {
		// Hand-assembled netlists (tests) bypass Build; compile privately
		// rather than mutating the shared netlist.
		kern = buildKernels(nl)
	}
	return &Simulator{
		nl:       nl,
		kern:     kern,
		laneMask: ^uint64(0),
		vals:     make([]uint64, len(nl.Cells)),
		state:    make([]uint64, len(nl.DFFs)),
		in:       make([]uint64, len(nl.Inputs)),
		setArr:   make([]uint64, len(nl.Cells)),
		clrArr:   make([]uint64, len(nl.Cells)),
		delayArr: make([]uint64, len(nl.Cells)),
		rawPrev:  make([]uint64, len(nl.Cells)),
	}
}

// Reset clears DFF state and delay history (between exciting patterns).
func (s *Simulator) Reset() {
	for i := range s.state {
		s.state[i] = 0
	}
	for i := range s.rawPrev {
		s.rawPrev[i] = 0
	}
}

// SetFaults installs a group of up to 64 faults; fault i occupies machine
// lane i. Passing nil clears all faults (golden simulation).
func (s *Simulator) SetFaults(group []Fault) {
	if len(group) > 64 {
		panic("netlist: fault group exceeds 64 lanes")
	}
	for i := range s.setArr {
		s.setArr[i] = 0
		s.clrArr[i] = 0
		s.delayArr[i] = 0
	}
	s.hasFaults = len(group) > 0
	s.hasDelay = false
	for lane, f := range group {
		switch {
		case f.Kind == Delay:
			s.delayArr[f.Node] |= 1 << lane
			s.hasDelay = true
		case f.Stuck:
			s.setArr[f.Node] |= 1 << lane
		default:
			s.clrArr[f.Node] |= 1 << lane
		}
	}
}

// SetInput drives primary input i (by declaration order) with a logic
// level, written to the lanes selected by the current lane mask (all 64
// by default).
func (s *Simulator) SetInput(i int, v bool) {
	var w uint64
	if v {
		w = ^uint64(0)
	}
	s.in[i] = (s.in[i] &^ s.laneMask) | (w & s.laneMask)
}

// SetLaneMask restricts subsequent SetInput/SetInputBus writes to the
// masked lanes, leaving the other lanes' pending values untouched. The
// default (and the reset value) is all-ones — broadcast. Campaigns use
// per-lane masks to pack independent patterns into one golden
// evaluation, one pattern per lane.
func (s *Simulator) SetLaneMask(m uint64) { s.laneMask = m }

// SetInputBus drives a width-w slice of inputs starting at base from an
// integer value, LSB first.
func (s *Simulator) SetInputBus(base, width int, value uint64) {
	for i := 0; i < width; i++ {
		s.SetInput(base+i, value>>i&1 == 1)
	}
}

// Eval propagates the current inputs through the combinational logic
// (fault overrides applied at every node) without clocking the DFFs.
//
// The combinational sweep streams through the netlist's precompiled
// kernel program (Kernels): one branch-free truth-table expression per
// gate, no per-gate kind dispatch. Stuck-at masks are applied
// unconditionally on the fast path — they are identically zero when no
// fault is installed — so the only per-Eval branch left is the delay
// split.
//
//vetsim:hotpath
func (s *Simulator) Eval() {
	vals := s.vals
	set, clr := s.setArr, s.clrArr

	apply := func(id Node, v uint64) {
		if s.hasFaults {
			v = (v | set[id]) &^ clr[id]
			if s.hasDelay {
				if m := s.delayArr[id]; m != 0 {
					// The slow path missed the capture edge: affected
					// lanes observe the previous evaluation's value.
					old := s.rawPrev[id]
					s.rawPrev[id] = v
					v = (v &^ m) | (old & m)
				}
			}
		}
		vals[id] = v
	}

	k := s.kern
	inIdx := 0
	for _, id := range s.nl.Inputs {
		apply(id, s.in[inIdx])
		inIdx++
	}
	for i, id := range k.ConstNode {
		apply(id, k.ConstWord[i])
	}
	for i, id := range s.nl.DFFs {
		apply(id, s.state[i])
	}

	in0, in1, in2 := k.PIn0, k.PIn1, k.PIn2
	outn := k.POut
	tlo, thi := k.PLo, k.PHi
	if !s.hasDelay {
		for i, id := range outn {
			a, b, c := vals[in0[i]], vals[in1[i]], vals[in2[i]]
			ml, mh := &KernelMasks[tlo[i]], &KernelMasks[thi[i]]
			vl := (ml[0]&^a|ml[1]&a)&^b | (ml[2]&^a|ml[3]&a)&b
			vh := (mh[0]&^a|mh[1]&a)&^b | (mh[2]&^a|mh[3]&a)&b
			v := vl&^c | vh&c
			vals[id] = (v | set[id]) &^ clr[id]
		}
		return
	}
	for i, id := range outn {
		a, b, c := vals[in0[i]], vals[in1[i]], vals[in2[i]]
		ml, mh := &KernelMasks[tlo[i]], &KernelMasks[thi[i]]
		vl := (ml[0]&^a|ml[1]&a)&^b | (ml[2]&^a|ml[3]&a)&b
		vh := (mh[0]&^a|mh[1]&a)&^b | (mh[2]&^a|mh[3]&a)&b
		apply(Node(id), vl&^c|vh&c)
	}
}

// Clock latches every DFF's next-state input into its state.
func (s *Simulator) Clock() {
	for i, id := range s.nl.DFFs {
		s.state[i] = s.vals[s.nl.Cells[id].In[0]]
	}
}

// Step is Eval followed by Clock.
func (s *Simulator) Step() {
	s.Eval()
	s.Clock()
}

// Node returns the current value word of a node.
func (s *Simulator) Node(n Node) uint64 { return s.vals[n] }

// CopyNodes copies every node's current value word into dst (one word per
// node, lane k = machine k). Campaigns snapshot the lane-packed golden
// evaluation this way — one bulk copy instead of per-node reads.
func (s *Simulator) CopyNodes(dst []uint64) { copy(dst, s.vals) }

// OutputWord assembles the value of a named output field for machine lane,
// LSB first.
func (s *Simulator) OutputWord(field string, lane int) uint64 {
	var v uint64
	for _, o := range s.nl.Outputs {
		if o.Field == field && s.vals[o.Node]>>lane&1 == 1 {
			v |= 1 << o.Bit
		}
	}
	return v
}

// OutputBit returns output o's value in machine lane.
func (s *Simulator) OutputBit(o Output, lane int) bool {
	return s.vals[o.Node]>>lane&1 == 1
}

// OutputSlice assembles a field value for machine lane from an explicit
// output-bit list (one field's Outputs entries), LSB first. Campaign inner
// loops use it to avoid OutputWord's scan over every declared output.
func (s *Simulator) OutputSlice(outs []Output, lane int) uint64 {
	var v uint64
	for _, o := range outs {
		if s.vals[o.Node]>>lane&1 == 1 {
			v |= 1 << o.Bit
		}
	}
	return v
}
