package netlist

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// evalScalar is a tiny reference evaluator: runs the simulator with the
// given input assignment and returns the value of node n in lane 0.
func evalWith(nl *Netlist, inputs map[string]uint64) *Simulator {
	sim := NewSimulator(nl)
	for i, name := range nl.InNames {
		_ = name
		_ = i
	}
	idx := map[string]int{}
	for i, name := range nl.InNames {
		idx[name] = i
	}
	for name, v := range inputs {
		sim.SetInput(idx[name], v == 1)
	}
	sim.Eval()
	return sim
}

func TestPrimitiveGates(t *testing.T) {
	b := NewBuilder("gates")
	a := b.Input("a")
	c := b.Input("b")
	b.Output("and", 0, b.And(a, c))
	b.Output("or", 0, b.Or(a, c))
	b.Output("xor", 0, b.Xor(a, c))
	b.Output("nand", 0, b.Nand(a, c))
	b.Output("nor", 0, b.Nor(a, c))
	b.Output("not", 0, b.Not(a))
	nl := b.MustBuild()

	for av := 0; av < 2; av++ {
		for cv := 0; cv < 2; cv++ {
			sim := evalWith(nl, map[string]uint64{"a": uint64(av), "b": uint64(cv)})
			checks := map[string]uint64{
				"and": uint64(av & cv), "or": uint64(av | cv),
				"xor": uint64(av ^ cv), "nand": uint64(1 &^ (av & cv)),
				"nor": uint64(1 &^ (av | cv)), "not": uint64(1 - av),
			}
			for field, want := range checks {
				if got := sim.OutputWord(field, 0); got != want {
					t.Errorf("%s(%d,%d) = %d, want %d", field, av, cv, got, want)
				}
			}
		}
	}
}

func TestMux(t *testing.T) {
	b := NewBuilder("mux")
	sel := b.Input("sel")
	lo := b.Input("lo")
	hi := b.Input("hi")
	b.Output("y", 0, b.Mux(sel, lo, hi))
	nl := b.MustBuild()
	cases := []struct{ sel, lo, hi, want uint64 }{
		{0, 0, 1, 0}, {0, 1, 0, 1}, {1, 0, 1, 1}, {1, 1, 0, 0},
	}
	for _, c := range cases {
		sim := evalWith(nl, map[string]uint64{"sel": c.sel, "lo": c.lo, "hi": c.hi})
		if got := sim.OutputWord("y", 0); got != c.want {
			t.Errorf("mux(sel=%d,lo=%d,hi=%d) = %d, want %d", c.sel, c.lo, c.hi, got, c.want)
		}
	}
}

func buildAdder(width int) *Netlist {
	b := NewBuilder("adder")
	a := b.InputBus("a", width)
	c := b.InputBus("b", width)
	sum, cout := b.Adder(a, c, b.Const(false))
	b.OutputBus("sum", sum)
	b.Output("cout", 0, cout)
	return b.MustBuild()
}

func TestAdderProperty(t *testing.T) {
	nl := buildAdder(16)
	sim := NewSimulator(nl)
	f := func(a, c uint16) bool {
		sim.SetInputBus(0, 16, uint64(a))
		sim.SetInputBus(16, 16, uint64(c))
		sim.Eval()
		want := uint64(a) + uint64(c)
		got := sim.OutputWord("sum", 0) | sim.OutputWord("cout", 0)<<16
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIncAndComparators(t *testing.T) {
	b := NewBuilder("cmp")
	a := b.InputBus("a", 8)
	b.OutputBus("inc", b.Inc(a))
	b.Output("eq100", 0, b.EqConst(a, 100))
	b.Output("lt37", 0, b.LtConst(a, 37))
	nl := b.MustBuild()
	sim := NewSimulator(nl)
	for v := 0; v < 256; v++ {
		sim.SetInputBus(0, 8, uint64(v))
		sim.Eval()
		if got := sim.OutputWord("inc", 0); got != uint64((v+1)&0xFF) {
			t.Fatalf("inc(%d) = %d", v, got)
		}
		if got := sim.OutputWord("eq100", 0); (got == 1) != (v == 100) {
			t.Fatalf("eq100(%d) = %d", v, got)
		}
		if got := sim.OutputWord("lt37", 0); (got == 1) != (v < 37) {
			t.Fatalf("lt37(%d) = %d", v, got)
		}
	}
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	b := NewBuilder("dec")
	sel := b.InputBus("sel", 4)
	oh := b.Decode(sel)
	b.OutputBus("onehot", oh)
	b.OutputBus("enc", b.Encode(oh))
	nl := b.MustBuild()
	sim := NewSimulator(nl)
	for v := 0; v < 16; v++ {
		sim.SetInputBus(0, 4, uint64(v))
		sim.Eval()
		if got := sim.OutputWord("onehot", 0); got != 1<<v {
			t.Fatalf("decode(%d) = %#x", v, got)
		}
		if got := sim.OutputWord("enc", 0); got != uint64(v) {
			t.Fatalf("encode(decode(%d)) = %d", v, got)
		}
	}
}

func TestMuxN(t *testing.T) {
	b := NewBuilder("muxn")
	sel := b.InputBus("sel", 2)
	opts := make([][]Node, 4)
	for i := range opts {
		opts[i] = b.ConstBus(8, uint64(10*i+5))
	}
	b.OutputBus("y", b.MuxN(sel, opts))
	nl := b.MustBuild()
	sim := NewSimulator(nl)
	for v := 0; v < 4; v++ {
		sim.SetInputBus(0, 2, uint64(v))
		sim.Eval()
		if got := sim.OutputWord("y", 0); got != uint64(10*v+5) {
			t.Fatalf("muxn(%d) = %d, want %d", v, got, 10*v+5)
		}
	}
}

func TestDFFCounter(t *testing.T) {
	// 4-bit counter: q <= q+1 each clock.
	b := NewBuilder("counter")
	q := b.Register(4)
	b.SetRegister(q, b.Inc(q), NoEnable)
	b.OutputBus("q", q)
	nl := b.MustBuild()
	sim := NewSimulator(nl)
	for cyc := 0; cyc < 20; cyc++ {
		sim.Eval()
		if got := sim.OutputWord("q", 0); got != uint64(cyc%16) {
			t.Fatalf("cycle %d: q = %d, want %d", cyc, got, cyc%16)
		}
		sim.Clock()
	}
}

func TestRegisterEnable(t *testing.T) {
	b := NewBuilder("regen")
	d := b.InputBus("d", 4)
	en := b.Input("en")
	q := b.Register(4)
	b.SetRegister(q, d, en)
	b.OutputBus("q", q)
	nl := b.MustBuild()
	sim := NewSimulator(nl)
	sim.SetInputBus(0, 4, 9)
	sim.SetInput(4, false)
	sim.Step()
	sim.Eval()
	if got := sim.OutputWord("q", 0); got != 0 {
		t.Fatalf("disabled register loaded: q=%d", got)
	}
	sim.SetInput(4, true)
	sim.Step()
	sim.Eval()
	if got := sim.OutputWord("q", 0); got != 9 {
		t.Fatalf("enabled register did not load: q=%d", got)
	}
}

func TestRotatePriorityArbiter(t *testing.T) {
	const n = 4
	b := NewBuilder("arb")
	reqs := b.InputBus("req", n)
	last := b.InputBus("last", 2)
	grant := b.RotatePriority(reqs, last)
	b.OutputBus("grant", grant)
	nl := b.MustBuild()
	sim := NewSimulator(nl)
	for last := 0; last < n; last++ {
		for req := 0; req < 1<<n; req++ {
			sim.SetInputBus(0, n, uint64(req))
			sim.SetInputBus(n, 2, uint64(last))
			sim.Eval()
			got := sim.OutputWord("grant", 0)
			// Reference: first set request at/after last+1 cyclically.
			want := uint64(0)
			for k := 0; k < n; k++ {
				i := (last + 1 + k) % n
				if req>>i&1 == 1 {
					want = 1 << i
					break
				}
			}
			if got != want {
				t.Fatalf("arb(req=%04b,last=%d) = %04b, want %04b", req, last, got, want)
			}
		}
	}
}

func TestParallelFaultSimulationMatchesSerial(t *testing.T) {
	// The core soundness property of the bit-parallel engine: simulating
	// 64 faults at once gives the same per-fault outputs as one at a time.
	nl := buildAdder(8)
	faults := FaultList(nl)
	rng := rand.New(rand.NewSource(3))

	for trial := 0; trial < 5; trial++ {
		a, c := rng.Uint64()&0xFF, rng.Uint64()&0xFF
		group := make([]Fault, 0, 64)
		perm := rng.Perm(len(faults))
		for _, i := range perm[:64] {
			group = append(group, faults[i])
		}

		par := NewSimulator(nl)
		par.SetFaults(group)
		par.SetInputBus(0, 8, a)
		par.SetInputBus(8, 8, c)
		par.Eval()

		for lane, f := range group {
			ser := NewSimulator(nl)
			ser.SetFaults([]Fault{f})
			ser.SetInputBus(0, 8, a)
			ser.SetInputBus(8, 8, c)
			ser.Eval()
			for _, field := range []string{"sum", "cout"} {
				pv := par.OutputWord(field, lane)
				sv := ser.OutputWord(field, 0)
				if pv != sv {
					t.Fatalf("fault %v lane %d: parallel %s=%d serial %s=%d",
						f, lane, field, pv, field, sv)
				}
			}
		}
	}
}

func TestFaultInjectionChangesAdderOutput(t *testing.T) {
	nl := buildAdder(8)
	sim := NewSimulator(nl)
	// Stuck-at-1 on input a[0] with a=0, b=0 must yield sum=1.
	sim.SetFaults([]Fault{{Node: nl.Inputs[0], Stuck: true}})
	sim.SetInputBus(0, 8, 0)
	sim.SetInputBus(8, 8, 0)
	sim.Eval()
	if got := sim.OutputWord("sum", 0); got != 1 {
		t.Fatalf("sum with sa1@a[0] = %d, want 1", got)
	}
}

func TestFaultListSize(t *testing.T) {
	nl := buildAdder(4)
	fl := FaultList(nl)
	if len(fl) != 2*nl.NumCells() {
		t.Fatalf("fault list %d, want %d", len(fl), 2*nl.NumCells())
	}
	if nl.NumFaults() != len(fl) {
		t.Fatalf("NumFaults inconsistent")
	}
}

func TestCombinationalCycleBuildError(t *testing.T) {
	b := NewBuilder("cycle")
	a := b.Input("a")
	// Manually create a cycle through two ANDs.
	n1 := b.And(a, a)
	n2 := b.And(n1, n1)
	b.cells[n1].In[1] = n2
	b.Output("y", 0, n2)
	nl, err := b.Build()
	if err == nil || nl != nil {
		t.Fatal("cycle did not fail Build")
	}
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BuildError", err)
	}
	if !be.HasCode("comb-cycle") {
		t.Fatalf("diagnostics %v missing comb-cycle", be.Diags)
	}
	if be.Name != "cycle" {
		t.Errorf("BuildError.Name = %q", be.Name)
	}
}

func TestUnwiredDFFBuildError(t *testing.T) {
	b := NewBuilder("baddff")
	q := b.DFF()
	b.Output("q", 0, q)
	_, err := b.Build()
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BuildError", err)
	}
	if !be.HasCode("floating-dff") {
		t.Fatalf("diagnostics %v missing floating-dff", be.Diags)
	}
	if got := be.Diags[0].Node; got != q {
		t.Errorf("diagnostic node = %d, want the DFF node %d", got, q)
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild on an unwired DFF did not panic")
		}
	}()
	b := NewBuilder("baddff")
	b.Output("q", 0, b.DFF())
	b.MustBuild()
}

func TestValidateNetlistCleanCircuit(t *testing.T) {
	nl := buildAdder(4)
	if diags := ValidateNetlist(nl); len(diags) != 0 {
		t.Fatalf("clean adder produced diagnostics: %v", diags)
	}
}

func TestValidateNetlistDanglingRef(t *testing.T) {
	nl := &Netlist{
		Name:  "broken",
		Cells: []Cell{{Kind: KInput}, {Kind: KBuf, In: [3]Node{99}}},
	}
	diags := ValidateNetlist(nl)
	found := false
	for _, d := range diags {
		if d.Code == "dangling-ref" && d.Severity == SevError {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostics %v missing dangling-ref", diags)
	}
}

func TestOutputFieldsOrder(t *testing.T) {
	b := NewBuilder("fields")
	a := b.Input("a")
	b.Output("x", 0, a)
	b.Output("y", 0, a)
	b.Output("x", 1, a)
	nl := b.MustBuild()
	fields := nl.OutputFields()
	if len(fields) != 2 || fields[0] != "x" || fields[1] != "y" {
		t.Fatalf("OutputFields = %v", fields)
	}
}

func TestDelayFaultPresentsPreviousValue(t *testing.T) {
	// A buffer with a delay fault outputs last cycle's input.
	b := NewBuilder("delay")
	a := b.Input("a")
	y := b.Buf(a)
	b.Output("y", 0, y)
	nl := b.MustBuild()
	sim := NewSimulator(nl)
	sim.SetFaults([]Fault{{Node: y, Kind: Delay}})

	sim.SetInput(0, true)
	sim.Eval()
	if got := sim.OutputWord("y", 0); got != 0 {
		t.Fatalf("first eval y = %d, want 0 (history empty)", got)
	}
	sim.SetInput(0, false)
	sim.Eval()
	if got := sim.OutputWord("y", 0); got != 1 {
		t.Fatalf("second eval y = %d, want previous input 1", got)
	}
	sim.SetInput(0, false)
	sim.Eval()
	if got := sim.OutputWord("y", 0); got != 0 {
		t.Fatalf("third eval y = %d, want 0", got)
	}
}

func TestDelayFaultOnStableSignalIsMasked(t *testing.T) {
	// A delay fault on a signal that never changes has no effect.
	b := NewBuilder("stable")
	a := b.Input("a")
	y := b.Buf(a)
	b.Output("y", 0, y)
	nl := b.MustBuild()
	sim := NewSimulator(nl)
	sim.SetFaults([]Fault{{Node: y, Kind: Delay}})
	sim.SetInput(0, false)
	for i := 0; i < 5; i++ {
		sim.Eval()
		if got := sim.OutputWord("y", 0); got != 0 {
			t.Fatalf("cycle %d: y = %d, want 0", i, got)
		}
	}
}

func TestDelayAndStuckFaultsCoexistInOneGroup(t *testing.T) {
	b := NewBuilder("mixed")
	a := b.Input("a")
	y := b.Buf(a)
	b.Output("y", 0, y)
	nl := b.MustBuild()
	sim := NewSimulator(nl)
	sim.SetFaults([]Fault{
		{Node: y, Kind: Delay},  // lane 0
		{Node: y, Stuck: true},  // lane 1
		{Node: y, Stuck: false}, // lane 2
	})
	sim.SetInput(0, false)
	sim.Eval() // seed history with 0
	sim.SetInput(0, true)
	sim.Eval()
	if got := sim.OutputWord("y", 0); got != 0 {
		t.Errorf("delay lane = %d, want 0", got)
	}
	if got := sim.OutputWord("y", 1); got != 1 {
		t.Errorf("sa1 lane = %d, want 1", got)
	}
	if got := sim.OutputWord("y", 2); got != 0 {
		t.Errorf("sa0 lane = %d, want 0", got)
	}
}

func TestDelayFaultListSize(t *testing.T) {
	nl := buildAdder(4)
	dl := DelayFaultList(nl)
	if len(dl) != nl.NumCells() {
		t.Fatalf("delay list %d, want %d", len(dl), nl.NumCells())
	}
	for _, f := range dl {
		if f.Kind != Delay {
			t.Fatal("non-delay fault in delay list")
		}
	}
}

func TestResetClearsDelayHistory(t *testing.T) {
	b := NewBuilder("rst")
	a := b.Input("a")
	y := b.Buf(a)
	b.Output("y", 0, y)
	nl := b.MustBuild()
	sim := NewSimulator(nl)
	sim.SetFaults([]Fault{{Node: y, Kind: Delay}})
	sim.SetInput(0, true)
	sim.Eval()
	sim.Reset()
	sim.SetInput(0, true)
	sim.Eval()
	if got := sim.OutputWord("y", 0); got != 0 {
		t.Fatalf("post-reset y = %d, want 0 (history cleared)", got)
	}
}

func TestMuxNArityReportedByBuild(t *testing.T) {
	b := NewBuilder("muxn")
	sel := b.InputBus("sel", 2) // 2 select bits but only 3 options
	opts := [][]Node{b.InputBus("a", 4), b.InputBus("c", 4), b.InputBus("d", 4)}
	out := b.MuxN(sel, opts)
	if len(out) != 4 {
		t.Fatalf("recovery bus width = %d, want 4", len(out))
	}
	b.OutputBus("y", out)
	_, err := b.Build()
	var be *BuildError
	if !errors.As(err, &be) || !be.HasCode("muxn-arity") {
		t.Fatalf("Build after bad MuxN: err = %v, want muxn-arity diagnostic", err)
	}
}

func TestBusWidthMismatchReportedByBuild(t *testing.T) {
	for _, tc := range []struct {
		op    string
		build func(b *Builder)
	}{
		{"XorBus", func(b *Builder) { b.OutputBus("y", b.XorBus(b.InputBus("a", 4), b.InputBus("c", 3))) }},
		{"AndBus", func(b *Builder) { b.OutputBus("y", b.AndBus(b.InputBus("a", 4), b.InputBus("c", 3))) }},
		{"MuxBus", func(b *Builder) {
			s := b.Input("s")
			b.OutputBus("y", b.MuxBus(s, b.InputBus("a", 4), b.InputBus("c", 3)))
		}},
		{"Adder", func(b *Builder) {
			sum, _ := b.Adder(b.InputBus("a", 4), b.InputBus("c", 3), b.Const(false))
			b.OutputBus("y", sum)
		}},
		{"Eq", func(b *Builder) { b.Output("y", 0, b.Eq(b.InputBus("a", 4), b.InputBus("c", 3))) }},
		{"SetRegister", func(b *Builder) {
			q := b.Register(4)
			b.SetRegister(q, b.InputBus("d", 3), NoEnable)
			b.OutputBus("y", q)
		}},
	} {
		b := NewBuilder("w-" + tc.op)
		tc.build(b)
		_, err := b.Build()
		var be *BuildError
		if !errors.As(err, &be) || !be.HasCode("bus-width") {
			t.Errorf("%s: Build err = %v, want bus-width diagnostic", tc.op, err)
		}
	}
}

func TestWellFormedMacrosStillBuild(t *testing.T) {
	b := NewBuilder("ok")
	sel := b.InputBus("sel", 1)
	out := b.MuxN(sel, [][]Node{b.InputBus("a", 4), b.InputBus("c", 4)})
	b.OutputBus("y", out)
	if _, err := b.Build(); err != nil {
		t.Fatalf("well-formed circuit failed Build: %v", err)
	}
}
