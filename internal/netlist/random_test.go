package netlist

import (
	"math/rand"
	"testing"
)

// randomCircuit builds a random combinational netlist over nIn inputs and
// a parallel software model (per-node closures), then cross-checks the
// gate-level evaluation against the model over random input vectors.
// This is the substrate's deepest equivalence property: whatever circuit
// the unit builders compose, Eval computes the boolean function it denotes.
func TestRandomCircuitsMatchBooleanModel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		nIn := 2 + rng.Intn(6)
		b := NewBuilder("rand")
		type node struct {
			n  Node
			fn func(in []bool) bool
		}
		pool := make([]node, 0, 64)
		for i := 0; i < nIn; i++ {
			i := i
			pool = append(pool, node{b.Input("i"), func(in []bool) bool { return in[i] }})
		}
		pick := func() node { return pool[rng.Intn(len(pool))] }
		nGates := 5 + rng.Intn(40)
		for g := 0; g < nGates; g++ {
			x, y, z := pick(), pick(), pick()
			switch rng.Intn(7) {
			case 0:
				pool = append(pool, node{b.Not(x.n), func(in []bool) bool { return !x.fn(in) }})
			case 1:
				pool = append(pool, node{b.And(x.n, y.n), func(in []bool) bool { return x.fn(in) && y.fn(in) }})
			case 2:
				pool = append(pool, node{b.Or(x.n, y.n), func(in []bool) bool { return x.fn(in) || y.fn(in) }})
			case 3:
				pool = append(pool, node{b.Xor(x.n, y.n), func(in []bool) bool { return x.fn(in) != y.fn(in) }})
			case 4:
				pool = append(pool, node{b.Nand(x.n, y.n), func(in []bool) bool { return !(x.fn(in) && y.fn(in)) }})
			case 5:
				pool = append(pool, node{b.Nor(x.n, y.n), func(in []bool) bool { return !(x.fn(in) || y.fn(in)) }})
			default:
				pool = append(pool, node{b.Mux(z.n, x.n, y.n), func(in []bool) bool {
					if z.fn(in) {
						return y.fn(in)
					}
					return x.fn(in)
				}})
			}
		}
		outs := make([]node, 0, 4)
		for i := 0; i < 4; i++ {
			o := pick()
			b.Output("o", i, o.n)
			outs = append(outs, o)
		}
		nl := b.MustBuild()
		sim := NewSimulator(nl)

		for vec := 0; vec < 32; vec++ {
			in := make([]bool, nIn)
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			for i, v := range in {
				sim.SetInput(i, v)
			}
			sim.Eval()
			for i, o := range outs {
				want := o.fn(in)
				got := sim.OutputWord("o", 0)>>i&1 == 1
				if got != want {
					t.Fatalf("trial %d vec %d output %d: gate %v, model %v",
						trial, vec, i, got, want)
				}
			}
		}
	}
}

// TestRandomCircuitFaultConsistency: on random circuits, a stuck-at fault
// at a node forces exactly that node's observed value, and fault-free
// lanes are unaffected by faulty neighbours.
func TestRandomCircuitFaultConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	b := NewBuilder("fc")
	ins := b.InputBus("x", 6)
	n1 := b.And(ins[0], ins[1])
	n2 := b.Xor(n1, ins[2])
	n3 := b.Or(n2, ins[3])
	n4 := b.Mux(ins[4], n3, ins[5])
	b.Output("y", 0, n4)
	nl := b.MustBuild()
	sim := NewSimulator(nl)

	for trial := 0; trial < 100; trial++ {
		v := rng.Uint64() & 0x3F
		// Lane 0: sa1 at n2; lane 1: sa0 at n2; lane 63: fault-free (no
		// entry — only two faults in the group).
		sim.SetFaults([]Fault{{Node: n2, Stuck: true}, {Node: n2, Stuck: false}})
		sim.SetInputBus(0, 6, v)
		sim.Eval()
		if got := sim.Node(n2) & 1; got != 1 {
			t.Fatalf("lane 0: n2 = %d, want forced 1", got)
		}
		if got := sim.Node(n2) >> 1 & 1; got != 0 {
			t.Fatalf("lane 1: n2 = %d, want forced 0", got)
		}
		// Fault-free lane agrees with a clean simulation.
		clean := NewSimulator(nl)
		clean.SetInputBus(0, 6, v)
		clean.Eval()
		if sim.OutputWord("y", 63) != clean.OutputWord("y", 0) {
			t.Fatalf("fault-free lane diverged from clean simulation")
		}
	}
}
