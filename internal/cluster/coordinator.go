package cluster

//vetsim:instrumented

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
	"gpufaultsim/internal/telemetry"
)

// Coordinator-side metrics. The per-worker gauge/counter handles are
// label-baked per worker name and created once at registration (never in
// a loop), so the hot lease path only touches atomics.
var (
	telWorkersLive  = telemetry.Default().Gauge("cluster_workers", "workers seen within the liveness window")
	telChunksServed = telemetry.Default().Counter("cluster_chunk_fetches_total", "dependency payloads served to workers via GET /cluster/chunks")
)

// workerState tracks one worker's registration and its metric handles.
type workerState struct {
	name      string
	lastSeen  time.Time
	granted   int64
	completed int64
	failed    int64

	gLeases    *telemetry.Gauge
	cGranted   *telemetry.Counter
	cCompleted *telemetry.Counter
}

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Ledger is the chunk lease state machine (shared with the
	// scheduler's Options.Ledger).
	Ledger *jobs.Ledger
	// Store is the coordinator's content-addressed result store: workers
	// push completions into it and pull dependency chunks out of it.
	Store *store.Store
	// SweepEvery is the lease-expiry sweep interval (<=0 selects TTL/4).
	SweepEvery time.Duration
	// Now overrides the clock (tests). Worker liveness is status-only and
	// never enters artifacts or cache keys.
	Now func() time.Time
}

// Coordinator owns cluster membership and serves the lease protocol on
// top of a jobs.Ledger and the shared result store.
type Coordinator struct {
	ledger *jobs.Ledger
	store  *store.Store
	sweep  time.Duration
	now    func() time.Time

	mu      sync.Mutex
	workers map[string]*workerState

	wg   sync.WaitGroup
	stop context.CancelFunc
}

// NewCoordinator builds a coordinator over a ledger and a store.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Ledger == nil || opts.Store == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a ledger and a store")
	}
	if opts.SweepEvery <= 0 {
		opts.SweepEvery = opts.Ledger.TTL() / 4
		if opts.SweepEvery <= 0 {
			opts.SweepEvery = time.Second
		}
	}
	if opts.Now == nil {
		opts.Now = func() time.Time { return time.Now() } //vetsim:ignore determinism worker liveness is status-only bookkeeping; never enters artifacts or cache keys
	}
	return &Coordinator{
		ledger:  opts.Ledger,
		store:   opts.Store,
		sweep:   opts.SweepEvery,
		now:     opts.Now,
		workers: make(map[string]*workerState),
	}, nil
}

// Start launches the lease-expiry sweeper. It runs until ctx is done or
// Stop is called.
func (c *Coordinator) Start(ctx context.Context) {
	ctx, c.stop = context.WithCancel(ctx)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.sweep)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.ledger.Expire()
				c.refreshGauges()
			}
		}
	}()
}

// Stop halts the sweeper and waits for it to exit.
func (c *Coordinator) Stop() {
	if c.stop != nil {
		c.stop()
	}
	c.wg.Wait()
}

// liveWindow is how long after its last contact a worker still counts as
// live: two TTLs, so one missed heartbeat round does not flap the gauge.
func (c *Coordinator) liveWindow() time.Duration { return 2 * c.ledger.TTL() }

// touch registers or refreshes a worker, creating its metric handles on
// first contact.
func (c *Coordinator) touch(name string) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[name]
	if !ok {
		w = &workerState{
			name:       name,
			gLeases:    telemetry.Default().Gauge("cluster_worker_active_leases", "leases currently held, by worker", telemetry.L("worker", name)),
			cGranted:   telemetry.Default().Counter("cluster_worker_leases_total", "lease grants, by worker", telemetry.L("worker", name)),
			cCompleted: telemetry.Default().Counter("cluster_worker_completed_total", "chunk completions, by worker", telemetry.L("worker", name)),
		}
		c.workers[name] = w
	}
	w.lastSeen = c.now()
	return w
}

// refreshGauges recomputes the live-worker count and per-worker lease
// gauges; called from the sweeper and after membership-changing requests.
func (c *Coordinator) refreshGauges() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	live := int64(0)
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.liveWindow() {
			live++
		}
		w.gLeases.Set(int64(len(c.ledger.ActiveLeases(w.name))))
	}
	telWorkersLive.Set(live)
}

// Register mounts the cluster protocol on mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /cluster/lease", c.handleLease)
	mux.HandleFunc("POST /cluster/complete", c.handleComplete)
	mux.HandleFunc("POST /cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /cluster/workers", c.handleWorkers)
	mux.HandleFunc("GET /cluster/chunks/{key}", c.handleChunk)
}

// Handler returns a standalone handler serving only the cluster routes
// (tests; the daemon mounts Register on its own mux).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		clusterError(w, http.StatusBadRequest, "bad lease request")
		return
	}
	ws := c.touch(req.Worker)
	grants := c.ledger.Lease(req.Worker, req.Max)
	ttl := c.ledger.TTL().Seconds()
	resp := LeaseResponse{}
	for _, g := range grants {
		signed, err := SignGrant(LeaseGrant{
			Lease: g.Lease, Worker: req.Worker, TTLSec: ttl, Work: g.Req,
		})
		if err != nil {
			clusterError(w, http.StatusInternalServerError, "sign grant: "+err.Error())
			return
		}
		resp.Grants = append(resp.Grants, signed)
	}
	c.mu.Lock()
	ws.granted += int64(len(grants))
	c.mu.Unlock()
	for range grants {
		ws.cGranted.Inc()
	}
	c.refreshGauges()
	clusterJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" || req.Key == "" {
		clusterError(w, http.StatusBadRequest, "bad complete request")
		return
	}
	ws := c.touch(req.Worker)
	if req.Error == "" {
		// Store first, then flip the ledger: a waiter woken by Complete
		// must find the payload. Duplicate keys are dedup hits by
		// construction (content-addressed), never conflicting writes.
		if err := c.store.Put(req.Key, req.Payload); err != nil {
			clusterError(w, http.StatusInternalServerError, "store: "+err.Error())
			return
		}
	}
	outcome := c.ledger.Complete(req.Lease, req.Worker, req.Key, req.Error)
	c.mu.Lock()
	switch {
	case req.Error != "":
		ws.failed++
	case outcome == jobs.CompleteOK:
		ws.completed++
	}
	c.mu.Unlock()
	if req.Error == "" && outcome == jobs.CompleteOK {
		ws.cCompleted.Inc()
	}
	c.refreshGauges()
	clusterJSON(w, http.StatusOK, CompleteResponse{Status: string(outcome)})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		clusterError(w, http.StatusBadRequest, "bad heartbeat request")
		return
	}
	c.touch(req.Worker)
	renewed, lost := c.ledger.Renew(req.Worker, req.Leases)
	clusterJSON(w, http.StatusOK, HeartbeatResponse{Renewed: renewed, Lost: lost})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	now := c.now()
	resp := WorkersResponse{Ledger: c.ledger.Stats()}
	for _, name := range names {
		ws := c.workers[name]
		age := now.Sub(ws.lastSeen)
		resp.Workers = append(resp.Workers, WorkerInfo{
			Name:         name,
			LastSeenSec:  age.Seconds(),
			Live:         age <= c.liveWindow(),
			ActiveLeases: c.ledger.ActiveLeases(name),
			Granted:      ws.granted,
			Completed:    ws.completed,
			Failed:       ws.failed,
		})
	}
	c.mu.Unlock()
	clusterJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleChunk(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, ok := c.store.Get(key)
	if !ok {
		clusterError(w, http.StatusNotFound, "no such chunk")
		return
	}
	telChunksServed.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func clusterJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func clusterError(w http.ResponseWriter, code int, msg string) {
	clusterJSON(w, code, map[string]string{"error": msg})
}
