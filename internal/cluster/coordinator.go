package cluster

//vetsim:instrumented

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
	"gpufaultsim/internal/telemetry"
)

// workerState tracks one worker's registration, its metric handles, its
// throughput EWMAs, and the latest registry snapshot it pushed. The
// per-worker handles are label-baked per worker name and created once at
// registration (never in a loop), so the hot lease path only touches
// atomics.
type workerState struct {
	name      string
	lastSeen  time.Time
	granted   int64
	completed int64
	failed    int64

	chunksRate rateEWMA
	bytesRate  rateEWMA

	// Latest pushed registry snapshot (nil until the first metrics
	// heartbeat) and the high-water contribution floors that keep
	// merged counters monotonic across a worker restart (a restarted
	// worker's counters reset to zero; its floor does not).
	metrics    *telemetry.Snapshot
	metricsAt  time.Time
	floorInt   map[string]int64
	floorFloat map[string]float64

	gLeases     *telemetry.Gauge
	cGranted    *telemetry.Counter
	cCompleted  *telemetry.Counter
	gChunksRate *telemetry.FloatGauge
	gBytesRate  *telemetry.FloatGauge
}

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Ledger is the chunk lease state machine (shared with the
	// scheduler's Options.Ledger).
	Ledger *jobs.Ledger
	// Store is the coordinator's content-addressed result store: workers
	// push completions into it and pull dependency chunks out of it.
	Store *store.Store
	// SweepEvery is the lease-expiry sweep interval (<=0 selects TTL/4).
	SweepEvery time.Duration
	// Now overrides the clock (tests). Worker liveness is status-only and
	// never enters artifacts or cache keys.
	Now func() time.Time
	// Registry overrides the metric registry (nil selects the process
	// default). Tests model separate processes by giving each role its
	// own registry.
	Registry *telemetry.Registry
	// Recorder overrides the flight recorder (nil selects the process
	// default). Worker span batches are ingested here; if the recorder
	// has no origin yet it is named "coordinator" so remote parent
	// references resolve.
	Recorder *telemetry.FlightRecorder
	// Log receives structured cluster events (nil discards them).
	Log *slog.Logger
	// RateTau is the throughput EWMA time constant in seconds (<=0
	// selects 30s).
	RateTau float64
}

// Coordinator owns cluster membership and serves the lease protocol on
// top of a jobs.Ledger and the shared result store.
type Coordinator struct {
	ledger  *jobs.Ledger
	store   *store.Store
	sweep   time.Duration
	now     func() time.Time
	reg     *telemetry.Registry
	rec     *telemetry.FlightRecorder
	log     *slog.Logger
	rateTau float64

	telWorkersLive  *telemetry.Gauge
	telChunksServed *telemetry.Counter

	mu      sync.Mutex
	workers map[string]*workerState

	wg   sync.WaitGroup
	stop context.CancelFunc
}

// NewCoordinator builds a coordinator over a ledger and a store.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Ledger == nil || opts.Store == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a ledger and a store")
	}
	if opts.SweepEvery <= 0 {
		opts.SweepEvery = opts.Ledger.TTL() / 4
		if opts.SweepEvery <= 0 {
			opts.SweepEvery = time.Second
		}
	}
	if opts.Now == nil {
		opts.Now = func() time.Time { return time.Now() } //vetsim:ignore determinism worker liveness is status-only bookkeeping; never enters artifacts or cache keys
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.Default()
	}
	if opts.Recorder == nil {
		opts.Recorder = telemetry.DefaultRecorder()
	}
	if opts.Recorder.Origin() == "" {
		opts.Recorder.SetOrigin("coordinator")
	}
	if opts.Log == nil {
		opts.Log = telemetry.NopLogger()
	}
	if opts.RateTau <= 0 {
		opts.RateTau = defaultRateTau
	}
	return &Coordinator{
		ledger:  opts.Ledger,
		store:   opts.Store,
		sweep:   opts.SweepEvery,
		now:     opts.Now,
		reg:     opts.Registry,
		rec:     opts.Recorder,
		log:     opts.Log,
		rateTau: opts.RateTau,
		telWorkersLive: opts.Registry.Gauge("cluster_workers",
			"workers seen within the liveness window"),
		telChunksServed: opts.Registry.Counter("cluster_chunk_fetches_total",
			"dependency payloads served to workers via GET /cluster/chunks"),
		workers: make(map[string]*workerState),
	}, nil
}

// Start launches the lease-expiry sweeper. It runs until ctx is done or
// Stop is called.
func (c *Coordinator) Start(ctx context.Context) {
	ctx, c.stop = context.WithCancel(ctx)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.sweep)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if n := c.ledger.Expire(); n > 0 {
					c.log.Warn("leases expired", "reassigned", n)
				}
				c.refreshGauges()
			}
		}
	}()
}

// Stop halts the sweeper and waits for it to exit.
func (c *Coordinator) Stop() {
	if c.stop != nil {
		c.stop()
	}
	c.wg.Wait()
}

// liveWindow is how long after its last contact a worker still counts as
// live: two TTLs, so one missed heartbeat round does not flap the gauge.
func (c *Coordinator) liveWindow() time.Duration { return 2 * c.ledger.TTL() }

// touch registers or refreshes a worker, creating its metric handles on
// first contact.
func (c *Coordinator) touch(name string) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[name]
	if !ok {
		w = &workerState{
			name:       name,
			chunksRate: newRateEWMA(c.rateTau),
			bytesRate:  newRateEWMA(c.rateTau),
			floorInt:   make(map[string]int64),
			floorFloat: make(map[string]float64),
			gLeases:    c.reg.Gauge("cluster_worker_active_leases", "leases currently held, by worker", telemetry.L("worker", name)),
			cGranted:   c.reg.Counter("cluster_worker_leases_total", "lease grants, by worker", telemetry.L("worker", name)),
			cCompleted: c.reg.Counter("cluster_worker_completed_total", "chunk completions, by worker", telemetry.L("worker", name)),
			gChunksRate: c.reg.FloatGauge("cluster_worker_throughput_chunks_per_sec",
				"EWMA chunk completion rate, by worker", telemetry.L("worker", name)),
			gBytesRate: c.reg.FloatGauge("cluster_worker_throughput_bytes_per_sec",
				"EWMA payload throughput, by worker", telemetry.L("worker", name)),
		}
		c.workers[name] = w
		c.log.Info("worker joined", "worker", name)
	}
	w.lastSeen = c.now()
	return w
}

// refreshGauges recomputes the live-worker count and per-worker lease
// and throughput gauges; called from the sweeper and after
// membership-changing requests.
func (c *Coordinator) refreshGauges() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	live := int64(0)
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.liveWindow() {
			live++
		}
		w.gLeases.Set(int64(len(c.ledger.ActiveLeases(w.name))))
		w.gChunksRate.Set(w.chunksRate.Rate(now))
		w.gBytesRate.Set(w.bytesRate.Rate(now))
	}
	c.telWorkersLive.Set(live)
}

// Register mounts the cluster protocol on mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /cluster/lease", c.handleLease)
	mux.HandleFunc("POST /cluster/complete", c.handleComplete)
	mux.HandleFunc("POST /cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /cluster/workers", c.handleWorkers)
	mux.HandleFunc("GET /cluster/metrics", c.handleClusterMetrics)
	mux.HandleFunc("GET /cluster/chunks/{key}", c.handleChunk)
}

// Handler returns a standalone handler serving only the cluster routes
// (tests; the daemon mounts Register on its own mux).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		clusterError(w, http.StatusBadRequest, "bad lease request")
		return
	}
	ws := c.touch(req.Worker)
	grants := c.ledger.Lease(req.Worker, req.Max)
	ttl := c.ledger.TTL().Seconds()
	resp := LeaseResponse{}
	for _, g := range grants {
		signed, err := SignGrant(LeaseGrant{
			Lease: g.Lease, Worker: req.Worker, TTLSec: ttl, Work: g.Req,
		})
		if err != nil {
			clusterError(w, http.StatusInternalServerError, "sign grant: "+err.Error())
			return
		}
		resp.Grants = append(resp.Grants, signed)
		// Propagate the scheduler's chunk span context beside the signed
		// grant, and mark the hand-off as a point span in the job trace.
		if !g.Trace.IsZero() {
			if resp.Traces == nil {
				resp.Traces = make(map[string]telemetry.TraceContext, len(grants))
			}
			resp.Traces[g.Lease] = g.Trace
		}
		sp := c.rec.StartSpanContext("lease:"+g.Req.Chunk.ID, g.Trace)
		sp.SetAttr("worker", req.Worker)
		sp.SetAttr("lease", g.Lease)
		sp.End()
		c.log.Debug("lease granted",
			"worker", req.Worker, "lease", g.Lease,
			"job", g.Req.Job, "chunk", g.Req.Chunk.ID, "run", g.Trace.Trace)
	}
	c.mu.Lock()
	ws.granted += int64(len(grants))
	c.mu.Unlock()
	for range grants {
		ws.cGranted.Inc()
	}
	c.refreshGauges()
	clusterJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" || req.Key == "" {
		clusterError(w, http.StatusBadRequest, "bad complete request")
		return
	}
	ws := c.touch(req.Worker)
	if req.Error == "" {
		// Store first, then flip the ledger: a waiter woken by Complete
		// must find the payload. Duplicate keys are dedup hits by
		// construction (content-addressed), never conflicting writes.
		if err := c.store.Put(req.Key, req.Payload); err != nil {
			clusterError(w, http.StatusInternalServerError, "store: "+err.Error())
			return
		}
	}
	tc := c.ledger.TraceOf(req.Key)
	// Stitch the worker's span subtree in before the ledger transition:
	// Complete wakes the scheduler's waiters, and a waiter that then
	// exports the job trace must already see the chunk's remote spans.
	c.rec.Ingest(req.Spans)
	outcome := c.ledger.Complete(req.Lease, req.Worker, req.Key, req.Error)
	c.mu.Lock()
	switch {
	case req.Error != "":
		ws.failed++
	case outcome == jobs.CompleteOK:
		ws.completed++
	}
	if req.Error == "" {
		// Physical throughput: the worker produced these bytes whether or
		// not the ledger still wanted them (late completions included).
		now := c.now()
		ws.chunksRate.Observe(1, now)
		ws.bytesRate.Observe(float64(len(req.Payload)), now)
	}
	c.mu.Unlock()
	if req.Error == "" && outcome == jobs.CompleteOK {
		ws.cCompleted.Inc()
	}
	// Mark the ledger transition as a point span parented like the lease
	// span.
	name := "complete"
	if tc.Chunk != "" {
		name = "complete:" + tc.Chunk
	}
	sp := c.rec.StartSpanContext(name, tc)
	sp.SetAttr("worker", req.Worker)
	sp.SetAttr("status", string(outcome))
	sp.End()
	if req.Error != "" {
		c.log.Error("chunk failed remotely",
			"worker", req.Worker, "lease", req.Lease, "chunk", tc.Chunk,
			"run", tc.Trace, "error", req.Error)
	} else {
		c.log.Debug("chunk completed",
			"worker", req.Worker, "lease", req.Lease, "chunk", tc.Chunk,
			"run", tc.Trace, "status", string(outcome), "bytes", len(req.Payload))
	}
	c.refreshGauges()
	clusterJSON(w, http.StatusOK, CompleteResponse{Status: string(outcome)})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		clusterError(w, http.StatusBadRequest, "bad heartbeat request")
		return
	}
	ws := c.touch(req.Worker)
	if req.Metrics != nil {
		if req.MetricsSchema == metricsSchema {
			c.absorbMetrics(ws, req.Metrics)
		} else {
			c.log.Warn("ignoring metrics push with unknown schema",
				"worker", req.Worker, "schema", req.MetricsSchema, "want", metricsSchema)
		}
	}
	renewed, lost := c.ledger.Renew(req.Worker, req.Leases)
	clusterJSON(w, http.StatusOK, HeartbeatResponse{Renewed: renewed, Lost: lost})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	now := c.now()
	resp := WorkersResponse{Ledger: c.ledger.Stats()}
	for _, name := range names {
		ws := c.workers[name]
		age := now.Sub(ws.lastSeen)
		resp.Workers = append(resp.Workers, WorkerInfo{
			Name:         name,
			LastSeenSec:  age.Seconds(),
			Live:         age <= c.liveWindow(),
			ActiveLeases: c.ledger.ActiveLeases(name),
			Granted:      ws.granted,
			Completed:    ws.completed,
			Failed:       ws.failed,
			Throughput: WorkerThroughput{
				ChunksPerSec: ws.chunksRate.Rate(now),
				BytesPerSec:  ws.bytesRate.Rate(now),
			},
		})
	}
	c.mu.Unlock()
	clusterJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleChunk(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, ok := c.store.Get(key)
	if !ok {
		clusterError(w, http.StatusNotFound, "no such chunk")
		return
	}
	c.telChunksServed.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func clusterJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func clusterError(w http.ResponseWriter, code int, msg string) {
	clusterJSON(w, code, map[string]string{"error": msg})
}
