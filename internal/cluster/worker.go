package cluster

//vetsim:instrumented

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
	"gpufaultsim/internal/telemetry"
)

// chunkRecorderCap bounds the throwaway per-chunk recorder that collects
// the span subtree shipped with a completion. A chunk records a handful
// of spans (root + compute + put), so this never wraps in practice.
const chunkRecorderCap = 32

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator (lease ownership,
	// /cluster/workers rows, per-worker metrics). Must be unique per
	// cluster.
	Name string
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Store is the worker's local content-addressed cache: computed
	// payloads land here before being pushed, and dependency chunks are
	// resolved here with remote read-through to the coordinator.
	Store *store.Store
	// BatchWorkers bounds intra-campaign fault-batch parallelism per
	// chunk (<=0 selects 1). Never influences payload bytes.
	BatchWorkers int
	// MaxLeases is how many chunks to request per poll (<=0 selects 1).
	MaxLeases int
	// Poll is the idle/backoff poll interval (<=0 selects 250ms).
	Poll time.Duration
	// MetricsEvery is the cadence of metrics-bearing heartbeats (<=0
	// selects 2s). These run independently of lease renewal so an idle
	// worker stays visible in /cluster/metrics.
	MetricsEvery time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Registry is the registry snapshotted on metrics pushes (nil selects
	// the process default). Tests model separate processes by giving each
	// worker its own registry.
	Registry *telemetry.Registry
	// Recorder receives the worker's copy of every chunk span subtree
	// (nil selects the process default). If it has no origin yet it is
	// named after the worker so trace stitching can attribute its spans.
	Recorder *telemetry.FlightRecorder
	// Log receives structured worker events (nil discards them).
	Log *slog.Logger
	// BeforeCompute, when set, runs before each chunk computation (test
	// hook for wedging a worker mid-lease). If it returns after ctx is
	// canceled the chunk is abandoned without a completion, exactly like
	// a worker death.
	BeforeCompute func(ctx context.Context, req jobs.ChunkRequest)
}

// Worker pulls chunk leases from a coordinator, computes them with the
// shared executor, and pushes payloads back under their content-addressed
// keys. Run loops until its context is canceled; heartbeats renew the
// active lease while a chunk computes, so a wedged or dead worker loses
// its leases to TTL expiry and nothing else. Each completion also ships
// the chunk's span subtree (rooted under the coordinator's chunk span)
// and a metrics goroutine pushes registry snapshots on heartbeats.
type Worker struct {
	opts      WorkerOptions
	client    *http.Client
	reg       *telemetry.Registry
	rec       *telemetry.FlightRecorder
	log       *slog.Logger
	connected atomic.Bool
	stop      context.CancelFunc

	telComputed  *telemetry.Counter
	telErrors    *telemetry.Counter
	telDedup     *telemetry.Counter
	telComputeHg *telemetry.Histogram
}

// NewWorker validates options and builds a worker, creating its metric
// handles once here (never per chunk).
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Name == "" || opts.Coordinator == "" || opts.Store == nil {
		return nil, fmt.Errorf("cluster: worker needs a name, a coordinator URL and a store")
	}
	if opts.BatchWorkers <= 0 {
		opts.BatchWorkers = 1
	}
	if opts.MaxLeases <= 0 {
		opts.MaxLeases = 1
	}
	if opts.Poll <= 0 {
		opts.Poll = 250 * time.Millisecond
	}
	if opts.MetricsEvery <= 0 {
		opts.MetricsEvery = 2 * time.Second
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.Default()
	}
	if opts.Recorder == nil {
		opts.Recorder = telemetry.DefaultRecorder()
	}
	if opts.Recorder.Origin() == "" {
		opts.Recorder.SetOrigin(opts.Name)
	}
	if opts.Log == nil {
		opts.Log = telemetry.NopLogger()
	}
	// Bake the identity in once; every worker log line carries it without
	// the call sites repeating (or duplicating) the attr.
	opts.Log = opts.Log.With(slog.String("worker", opts.Name))
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{
		opts:   opts,
		client: client,
		reg:    opts.Registry,
		rec:    opts.Recorder,
		log:    opts.Log,
		telComputed: opts.Registry.Counter("cluster_chunks_computed_total",
			"chunks computed by workers in this process"),
		telErrors: opts.Registry.Counter("cluster_worker_errors_total",
			"worker protocol or compute errors"),
		telDedup: opts.Registry.Counter("cluster_chunks_local_dedup_total",
			"leased chunks already present in the worker's local store"),
		telComputeHg: opts.Registry.Histogram("cluster_worker_compute_seconds",
			"chunk computation latency on workers", telemetry.SecondsBuckets()),
	}, nil
}

// Connected reports whether the last coordinator exchange succeeded
// (worker readiness).
func (w *Worker) Connected() bool { return w.connected.Load() }

// Recorder exposes the worker's flight recorder (the worker-side copy of
// every chunk trace) for debug endpoints and tests.
func (w *Worker) Recorder() *telemetry.FlightRecorder { return w.rec }

// Stop cancels a running Run loop.
func (w *Worker) Stop() {
	if w.stop != nil {
		w.stop()
	}
}

// Run is the worker main loop: lease, compute, complete, repeat. It
// returns the context's error once canceled (via ctx or Stop). A
// sibling goroutine pushes metrics snapshots for the loop's lifetime.
func (w *Worker) Run(ctx context.Context) error {
	ctx, w.stop = context.WithCancel(ctx)
	defer w.stop()
	go w.metricsLoop(ctx)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.lease(ctx)
		if err != nil {
			w.connected.Store(false)
			if ctx.Err() == nil {
				w.telErrors.Inc()
				w.log.Warn("lease poll failed", "error", err)
			}
			sleepCtx(ctx, w.opts.Poll)
			continue
		}
		w.connected.Store(true)
		if len(resp.Grants) == 0 {
			sleepCtx(ctx, w.opts.Poll)
			continue
		}
		for _, g := range resp.Grants {
			w.process(ctx, g, resp.Traces[g.Lease])
		}
	}
}

// metricsLoop pushes registry snapshots on the metrics cadence until the
// run scope ends. Push failures are dropped silently: the next tick
// carries a fresher snapshot anyway, and lease heartbeats report
// connectivity loss already.
func (w *Worker) metricsLoop(ctx context.Context) {
	t := time.NewTicker(w.opts.MetricsEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = w.PushMetrics(ctx)
		}
	}
}

// PushMetrics sends one metrics-bearing heartbeat (no lease renewal):
// the full registry snapshot tagged with the metrics schema. Exported so
// tests and shutdown paths can force a final push.
func (w *Worker) PushMetrics(ctx context.Context) error {
	snap := w.reg.Snapshot()
	var resp HeartbeatResponse
	return w.post(ctx, "/cluster/heartbeat", HeartbeatRequest{
		Worker:        w.opts.Name,
		MetricsSchema: metricsSchema,
		Metrics:       &snap,
	}, &resp)
}

// process executes one granted chunk end to end, recording its span
// subtree into a chunk-local recorder whose batch ships with the
// completion (and is kept locally for the worker's own trace view).
func (w *Worker) process(ctx context.Context, g LeaseGrant, tc telemetry.TraceContext) {
	crec := telemetry.NewFlightRecorder(chunkRecorderCap)
	crec.SetOrigin(w.opts.Name)
	root := crec.StartSpanContext("chunk:"+g.Work.Chunk.ID, tc)
	root.SetAttr("worker", w.opts.Name)
	root.SetAttr("lease", g.Lease)

	if err := VerifyGrant(g); err != nil {
		// Protocol skew: report it so the chunk fails loudly instead of
		// the grant being silently dropped and endlessly reassigned.
		w.telErrors.Inc()
		w.log.Error("grant rejected", "lease", g.Lease, "error", err)
		root.SetAttr("error", err.Error())
		w.complete(ctx, g, nil, err, w.endChunk(crec, root))
		return
	}

	// Local dedup: a previous campaign on this worker may already hold
	// the payload.
	if payload, ok := w.opts.Store.Get(g.Work.Key); ok {
		w.telDedup.Inc()
		root.SetAttr("dedup", "local")
		w.log.Debug("chunk deduplicated locally", "lease", g.Lease, "chunk", g.Work.Chunk.ID, "run", tc.Trace)
		w.complete(ctx, g, payload, nil, w.endChunk(crec, root))
		return
	}

	// Renew the lease while the chunk computes. The loop runs as a
	// method goroutine (no captured writes) and stops with this scope.
	hbCtx, hbStop := context.WithCancel(ctx)
	defer hbStop()
	go w.heartbeatLoop(hbCtx, g)

	if w.opts.BeforeCompute != nil {
		w.opts.BeforeCompute(ctx, g.Work)
	}
	if ctx.Err() != nil {
		// Worker stopped mid-lease: abandon without completing, exactly
		// like a crash. The coordinator expires the lease and reassigns.
		return
	}

	sp := root.Child("compute")
	t := telemetry.StartTimer(w.telComputeHg)
	payload, err := jobs.ComputeChunk(g.Work, w.depFetcher(ctx), w.opts.BatchWorkers)
	t.Stop()
	sp.End()
	if err != nil {
		w.telErrors.Inc()
		w.log.Error("chunk compute failed", "lease", g.Lease, "chunk", g.Work.Chunk.ID,
			"run", tc.Trace, "error", err)
		root.SetAttr("error", err.Error())
		w.complete(ctx, g, nil, err, w.endChunk(crec, root))
		return
	}
	w.telComputed.Inc()
	// Cache locally first so future leases and dependency lookups hit.
	sp = root.Child("put")
	if err := w.opts.Store.Put(g.Work.Key, payload); err != nil {
		w.telErrors.Inc()
		w.log.Warn("local store put failed", "chunk", g.Work.Chunk.ID, "error", err)
	}
	sp.End()
	w.log.Debug("chunk computed", "lease", g.Lease, "chunk", g.Work.Chunk.ID,
		"run", tc.Trace, "bytes", len(payload))
	w.complete(ctx, g, payload, nil, w.endChunk(crec, root))
}

// endChunk closes the chunk root span and drains the chunk-local
// recorder into the batch shipped with the completion. The worker's own
// recorder ingests a copy so /debug/trace on the worker shows the same
// subtree the coordinator stitches.
func (w *Worker) endChunk(crec *telemetry.FlightRecorder, root *telemetry.Span) []telemetry.SpanRecord {
	root.End()
	spans, _ := crec.Snapshot()
	w.rec.Ingest(spans)
	return spans
}

// depFetcher resolves dependency chunks (the profiling payload for gate
// chunks): local store first, then the coordinator's chunk endpoint.
func (w *Worker) depFetcher(ctx context.Context) func(key string) ([]byte, error) {
	return func(key string) ([]byte, error) {
		return w.opts.Store.GetOrFetch(key, func(k string) ([]byte, error) {
			return w.fetchChunk(ctx, k)
		})
	}
}

// heartbeatLoop renews one lease at a third of its TTL until the scope
// ends or the coordinator reports the lease lost (expired and
// reassigned — the in-flight computation then completes late, which the
// content-addressed store makes harmless).
func (w *Worker) heartbeatLoop(ctx context.Context, g LeaseGrant) {
	interval := time.Duration(g.TTLSec / 3 * float64(time.Second))
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var resp HeartbeatResponse
			err := w.post(ctx, "/cluster/heartbeat",
				HeartbeatRequest{Worker: w.opts.Name, Leases: []string{g.Lease}}, &resp)
			if err != nil {
				continue // transient; the TTL gives us slack to retry
			}
			for _, lost := range resp.Lost {
				if lost == g.Lease {
					w.log.Warn("lease lost", "lease", g.Lease, "chunk", g.Work.Chunk.ID)
					return
				}
			}
		}
	}
}

func (w *Worker) lease(ctx context.Context) (LeaseResponse, error) {
	var resp LeaseResponse
	err := w.post(ctx, "/cluster/lease",
		LeaseRequest{Worker: w.opts.Name, Max: w.opts.MaxLeases}, &resp)
	return resp, err
}

// complete pushes a payload (or the compute error) plus the chunk's span
// batch back to the coordinator. Uses a background-derived context so a
// worker stopping right after finishing a chunk still delivers the
// result.
func (w *Worker) complete(ctx context.Context, g LeaseGrant, payload []byte, compErr error, spans []telemetry.SpanRecord) {
	req := CompleteRequest{
		Worker: w.opts.Name, Lease: g.Lease, Key: g.Work.Key,
		Payload: payload, Spans: spans,
	}
	if compErr != nil {
		req.Error = compErr.Error()
	}
	var resp CompleteResponse
	if err := w.post(context.WithoutCancel(ctx), "/cluster/complete", req, &resp); err != nil {
		w.telErrors.Inc()
		w.log.Warn("complete push failed", "lease", g.Lease, "error", err)
	}
}

// fetchChunk pulls one dependency payload from the coordinator.
func (w *Worker) fetchChunk(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.opts.Coordinator+"/cluster/chunks/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: GET /cluster/chunks/%s: %s", key, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// post sends one JSON request to the coordinator and decodes the reply.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: POST %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
