package cluster

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
	"gpufaultsim/internal/telemetry"
)

// fakeClock is an injectable coordinator clock; the metrics tests drive
// liveness, staleness and EWMA decay deterministically through it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// newMetricsCoordinator builds an unstarted coordinator (no sweeper: the
// fake clock alone decides liveness) on private telemetry, so these
// tests never touch the process-default registry or recorder.
func newMetricsCoordinator(t *testing.T, ttl time.Duration) (*Coordinator, *fakeClock, *jobs.Ledger, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	led := jobs.NewLedger(jobs.LedgerOptions{TTL: ttl})
	clk := newFakeClock()
	c, err := NewCoordinator(CoordinatorOptions{
		Ledger: led, Store: st, Now: clk.Now,
		Registry: telemetry.NewRegistry(),
		Recorder: telemetry.NewFlightRecorder(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, clk, led, srv
}

func pushMetrics(t *testing.T, url, worker string, snap telemetry.Snapshot) {
	t.Helper()
	var hr HeartbeatResponse
	code := postJSON(t, url+"/cluster/heartbeat", HeartbeatRequest{
		Worker: worker, MetricsSchema: metricsSchema, Metrics: &snap,
	}, &hr)
	if code != http.StatusOK {
		t.Fatalf("metrics heartbeat status = %d", code)
	}
}

func getClusterMetrics(t *testing.T, url string) ClusterMetrics {
	t.Helper()
	resp, err := http.Get(url + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cm ClusterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&cm); err != nil {
		t.Fatal(err)
	}
	return cm
}

// checkMergeArithmetic verifies the response is internally consistent:
// every merged counter equals the coordinator's own value plus the sum
// of the per-worker contributions, exactly.
func checkMergeArithmetic(t *testing.T, cm ClusterMetrics) {
	t.Helper()
	wantInt := make(map[string]int64)
	for k, v := range cm.Coordinator.Counters {
		wantInt[k] += v
	}
	wantFloat := make(map[string]float64)
	for k, v := range cm.Coordinator.FloatCounters {
		wantFloat[k] += v
	}
	for _, wm := range cm.Workers {
		for k, v := range wm.Snapshot.Counters {
			wantInt[k] += v
		}
		for k, v := range wm.Snapshot.FloatCounters {
			wantFloat[k] += v
		}
	}
	for k, want := range wantInt {
		if got := cm.Merged.Counters[k]; got != want {
			t.Fatalf("merged counter %s = %d, want coordinator+workers = %d", k, got, want)
		}
	}
	for k, want := range wantFloat {
		if got := cm.Merged.FloatCounters[k]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("merged float counter %s = %v, want coordinator+workers = %v", k, got, want)
		}
	}
}

func TestClusterMetricsMergesWorkerPushes(t *testing.T) {
	_, _, _, srv := newMetricsCoordinator(t, time.Minute)
	pushMetrics(t, srv.URL, "w1", telemetry.Snapshot{
		Counters:      map[string]int64{"cluster_chunks_computed_total": 5},
		FloatCounters: map[string]float64{"worker_busy_seconds": 1.5},
	})
	pushMetrics(t, srv.URL, "w2", telemetry.Snapshot{
		Counters: map[string]int64{"cluster_chunks_computed_total": 4},
	})

	cm := getClusterMetrics(t, srv.URL)
	if cm.Schema != metricsSchema {
		t.Fatalf("schema = %d, want %d", cm.Schema, metricsSchema)
	}
	if len(cm.Workers) != 2 || cm.Workers[0].Worker != "w1" || cm.Workers[1].Worker != "w2" {
		t.Fatalf("workers = %+v, want sorted [w1 w2]", cm.Workers)
	}
	for _, wm := range cm.Workers {
		if wm.Stale {
			t.Fatalf("worker %s stale immediately after push", wm.Worker)
		}
	}
	if got := cm.Merged.Counters["cluster_chunks_computed_total"]; got != 9 {
		t.Fatalf("merged computed total = %d, want 5+4", got)
	}
	if got := cm.Merged.FloatCounters["worker_busy_seconds"]; got != 1.5 {
		t.Fatalf("merged busy seconds = %v, want 1.5", got)
	}
	// The coordinator's own registry still shows through the merge.
	if _, ok := cm.Merged.Gauges["cluster_workers"]; !ok {
		t.Fatal("merged snapshot lost the coordinator's own cluster_workers gauge")
	}
	checkMergeArithmetic(t, cm)
}

// TestClusterMetricsMonotonicAcrossWorkerRestart simulates a worker
// restart: its counters reset to zero, but the work it already reported
// must stay in the merged totals at the high-water floor.
func TestClusterMetricsMonotonicAcrossWorkerRestart(t *testing.T) {
	_, _, _, srv := newMetricsCoordinator(t, time.Minute)
	counters := func(n int64) telemetry.Snapshot {
		return telemetry.Snapshot{Counters: map[string]int64{"cluster_chunks_computed_total": n}}
	}
	pushMetrics(t, srv.URL, "w1", counters(5))
	pushMetrics(t, srv.URL, "w1", counters(2)) // restarted: counter went backwards
	cm := getClusterMetrics(t, srv.URL)
	if got := cm.Merged.Counters["cluster_chunks_computed_total"]; got != 5 {
		t.Fatalf("merged total after restart = %d, want floor 5", got)
	}
	// The restarted worker catches up past its floor; the floor advances.
	pushMetrics(t, srv.URL, "w1", counters(7))
	cm = getClusterMetrics(t, srv.URL)
	if got := cm.Merged.Counters["cluster_chunks_computed_total"]; got != 7 {
		t.Fatalf("merged total after catch-up = %d, want 7", got)
	}
	checkMergeArithmetic(t, cm)
}

// TestClusterMetricsStaleWorkerStaysMerged advances the clock past the
// liveness window: the quiet worker is marked stale but its completed
// work must not vanish from the fleet totals.
func TestClusterMetricsStaleWorkerStaysMerged(t *testing.T) {
	_, clk, _, srv := newMetricsCoordinator(t, time.Minute) // liveWindow = 2min
	pushMetrics(t, srv.URL, "w1", telemetry.Snapshot{
		Counters: map[string]int64{"cluster_chunks_computed_total": 3},
	})
	clk.Advance(5 * time.Minute)
	cm := getClusterMetrics(t, srv.URL)
	if len(cm.Workers) != 1 {
		t.Fatalf("workers = %d, want the stale one still listed", len(cm.Workers))
	}
	wm := cm.Workers[0]
	if !wm.Stale {
		t.Fatalf("worker 5min quiet not marked stale (age %.0fs)", wm.AgeSec)
	}
	if math.Abs(wm.AgeSec-300) > 1 {
		t.Fatalf("age = %vs, want ~300", wm.AgeSec)
	}
	if got := cm.Merged.Counters["cluster_chunks_computed_total"]; got != 3 {
		t.Fatalf("stale worker's work dropped from merge: %d, want 3", got)
	}
}

// TestClusterMetricsUnknownSchemaIgnored pushes a snapshot tagged with a
// future schema; merging values whose semantics may have shifted would
// be worse than dropping them, so the push must be ignored wholesale.
func TestClusterMetricsUnknownSchemaIgnored(t *testing.T) {
	_, _, _, srv := newMetricsCoordinator(t, time.Minute)
	var hr HeartbeatResponse
	postJSON(t, srv.URL+"/cluster/heartbeat", HeartbeatRequest{
		Worker: "w1", MetricsSchema: 99,
		Metrics: &telemetry.Snapshot{Counters: map[string]int64{"cluster_chunks_computed_total": 5}},
	}, &hr)
	cm := getClusterMetrics(t, srv.URL)
	if len(cm.Workers) != 0 {
		t.Fatalf("unknown-schema push produced worker rows: %+v", cm.Workers)
	}
	if got := cm.Merged.Counters["cluster_chunks_computed_total"]; got != 0 {
		t.Fatalf("unknown-schema counters leaked into the merge: %d", got)
	}
}

func TestClusterMetricsPrometheusFormat(t *testing.T) {
	_, _, _, srv := newMetricsCoordinator(t, time.Minute)
	pushMetrics(t, srv.URL, "w1", telemetry.Snapshot{
		Counters: map[string]int64{"cluster_chunks_computed_total": 5},
	})
	resp, err := http.Get(srv.URL + "/cluster/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"cluster_chunks_computed_total 5",
		"cluster_worker_throughput_chunks_per_sec",
		"cluster_workers",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prometheus body missing %q:\n%s", want, body)
		}
	}
}

// TestWorkersViewThroughputEWMA drives the lease/complete path on the
// fake clock and checks the throughput view: a completion registers as
// an n/tau impulse and decays by exp(-dt/tau) while the worker idles.
func TestWorkersViewThroughputEWMA(t *testing.T) {
	_, clk, led, srv := newMetricsCoordinator(t, time.Minute)
	req := testReq(t, "sw:vectoradd")
	led.Offer(req)
	var lr LeaseResponse
	postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "w1", Max: 1}, &lr)
	if len(lr.Grants) != 1 {
		t.Fatalf("grants = %d", len(lr.Grants))
	}
	payload := []byte(`{"ok":true,"pad":"0123456789"}`)
	postJSON(t, srv.URL+"/cluster/complete",
		CompleteRequest{Worker: "w1", Lease: lr.Grants[0].Lease, Key: req.Key, Payload: payload}, &CompleteResponse{})

	throughput := func() WorkerThroughput {
		resp, err := http.Get(srv.URL + "/cluster/workers")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var wr WorkersResponse
		if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
			t.Fatal(err)
		}
		if len(wr.Workers) != 1 {
			t.Fatalf("workers = %d, want 1", len(wr.Workers))
		}
		return wr.Workers[0].Throughput
	}

	tp := throughput()
	if want := 1.0 / defaultRateTau; math.Abs(tp.ChunksPerSec-want) > 1e-9 {
		t.Fatalf("chunks/sec = %v, want impulse %v", tp.ChunksPerSec, want)
	}
	if want := float64(len(payload)) / defaultRateTau; math.Abs(tp.BytesPerSec-want) > 1e-9 {
		t.Fatalf("bytes/sec = %v, want impulse %v", tp.BytesPerSec, want)
	}

	clk.Advance(time.Duration(defaultRateTau) * time.Second)
	decayed := throughput()
	if want := tp.ChunksPerSec * math.Exp(-1); math.Abs(decayed.ChunksPerSec-want) > 1e-9 {
		t.Fatalf("after one tau idle: chunks/sec = %v, want %v", decayed.ChunksPerSec, want)
	}
}
