package cluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
)

// campaignSpec keeps the multi-node campaign fast while exercising every
// phase: profiling, three gate chunks, one software chunk.
func campaignSpec() jobs.Spec {
	return jobs.Spec{
		Seed:        7,
		MaxPatterns: 16,
		Injections:  2,
		Apps:        []string{"vectoradd"},
		Profiling:   []string{"vectoradd", "gemm"},
	}
}

// runSingleNode executes the spec on a plain local scheduler and returns
// its artifacts by name — the byte-identity reference for cluster runs.
func runSingleNode(t *testing.T, spec jobs.Spec) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir+"/cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := jobs.New(jobs.Options{Dir: dir + "/jobs", Store: st, JobWorkers: 1, ChunkWorkers: 1, BatchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Stop()
	status, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, s, status.ID)
	out := make(map[string][]byte)
	for _, name := range final.Artifacts {
		b, ok := s.Artifact(status.ID, name)
		if !ok {
			t.Fatalf("reference artifact %s missing", name)
		}
		out[name] = b
	}
	if len(out) == 0 {
		t.Fatal("reference run produced no artifacts")
	}
	return out
}

func waitJob(t *testing.T, s *jobs.Scheduler, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch st.State {
		case jobs.StateDone:
			return st
		case jobs.StateFailed:
			t.Fatalf("job %s failed: %s", id, st.Err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	st, _ := s.Job(id)
	t.Fatalf("job %s stuck in %s", id, st.State)
	return jobs.Status{}
}

// newClusterWorker builds a worker with its own private store directory.
func newClusterWorker(t *testing.T, name, url string, hook func(ctx context.Context, req jobs.ChunkRequest)) *Worker {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerOptions{
		Name: name, Coordinator: url, Store: st,
		BatchWorkers: 1, MaxLeases: 2, Poll: 10 * time.Millisecond,
		BeforeCompute: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestClusterKillWorkerMidCampaign is the multi-node acceptance test: a
// coordinator scheduler routes chunks through the lease ledger, worker A
// computes the profiling chunk and then wedges on its first gate chunk
// and is stopped — a worker death while holding a lease. Worker B joins,
// the coordinator expires A's lease past its TTL and reassigns the chunk,
// and the campaign completes with artifacts byte-identical to the
// single-node serial reference run.
func TestClusterKillWorkerMidCampaign(t *testing.T) {
	reference := runSingleNode(t, campaignSpec())

	dir := t.TempDir()
	coordStore, err := store.Open(dir+"/cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	ledger := jobs.NewLedger(jobs.LedgerOptions{TTL: 250 * time.Millisecond})
	sched, err := jobs.New(jobs.Options{
		Dir: dir + "/jobs", Store: coordStore,
		JobWorkers: 1, ChunkWorkers: 3, Ledger: ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorOptions{Ledger: ledger, Store: coordStore, SweepEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched.Start(ctx)
	defer sched.Stop()
	coord.Start(ctx)
	defer coord.Stop()

	// Worker A: computes the profile chunk normally, then wedges forever
	// on its first gate chunk (still holding the lease) until stopped.
	wedged := make(chan string, 1)
	var once sync.Once
	workerA := newClusterWorker(t, "worker-a", srv.URL, func(hctx context.Context, req jobs.ChunkRequest) {
		if req.Chunk.Phase != jobs.PhaseGate {
			return
		}
		once.Do(func() { wedged <- req.Chunk.ID })
		<-hctx.Done()
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); workerA.Run(ctx) }()

	status, err := sched.Submit(campaignSpec())
	if err != nil {
		t.Fatal(err)
	}

	var wedgedChunk string
	select {
	case wedgedChunk = <-wedged:
	case <-time.After(60 * time.Second):
		t.Fatal("worker A never reached a gate chunk")
	}

	// Kill A mid-lease: Run's context unwinds, heartbeats cease, and the
	// wedged chunk's completion never arrives.
	workerA.Stop()
	wg.Wait()

	// Worker B joins and must finish everything, including the chunk A
	// died holding, pulling A's profile payload over the remote
	// read-through path (B's local store has never seen it).
	workerB := newClusterWorker(t, "worker-b", srv.URL, nil)
	wg.Add(1)
	go func() { defer wg.Done(); workerB.Run(ctx) }()
	defer func() { workerB.Stop(); wg.Wait() }()

	final := waitJob(t, sched, status.ID)

	if got := ledger.Reassignments(); got == 0 {
		t.Fatalf("reassignments = 0, want > 0 (chunk %s was abandoned mid-lease)", wedgedChunk)
	}
	if len(final.Artifacts) != len(reference) {
		t.Fatalf("artifact count = %d, want %d", len(final.Artifacts), len(reference))
	}
	for name, want := range reference {
		got, ok := sched.Artifact(status.ID, name)
		if !ok {
			t.Fatalf("cluster artifact %s missing", name)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("artifact %s differs from single-node reference (%d vs %d bytes)", name, len(got), len(want))
		}
	}

	// The ledger settled: nothing pending or leased, no failures.
	st := ledger.Stats()
	if st.Pending != 0 || st.Leased != 0 || st.Failed != 0 {
		t.Fatalf("ledger not settled: %+v", st)
	}
}

// TestClusterTwoWorkersShareCampaign runs the healthy path: two live
// workers split the chunks and the artifacts still match the reference.
func TestClusterTwoWorkersShareCampaign(t *testing.T) {
	reference := runSingleNode(t, campaignSpec())

	dir := t.TempDir()
	coordStore, err := store.Open(dir+"/cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	ledger := jobs.NewLedger(jobs.LedgerOptions{TTL: 5 * time.Second})
	sched, err := jobs.New(jobs.Options{
		Dir: dir + "/jobs", Store: coordStore,
		JobWorkers: 1, ChunkWorkers: 3, Ledger: ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorOptions{Ledger: ledger, Store: coordStore})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched.Start(ctx)
	defer sched.Stop()
	coord.Start(ctx)
	defer coord.Stop()

	var wg sync.WaitGroup
	var workers []*Worker
	for _, name := range []string{"worker-a", "worker-b"} {
		w := newClusterWorker(t, name, srv.URL, nil)
		workers = append(workers, w)
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}
	defer func() {
		for _, w := range workers {
			w.Stop()
		}
		wg.Wait()
	}()

	status, err := sched.Submit(campaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, sched, status.ID)
	for name, want := range reference {
		got, ok := sched.Artifact(status.ID, name)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("artifact %s missing or differs from reference", name)
		}
	}
	if len(final.Artifacts) != len(reference) {
		t.Fatalf("artifact count = %d, want %d", len(final.Artifacts), len(reference))
	}
}
