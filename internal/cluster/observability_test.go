package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
	"gpufaultsim/internal/telemetry"
)

// TestTraceContextNeverEntersGrantDigest is the cache-safety guard for
// trace propagation: offering a chunk with a trace context must not
// change the chunk-request digest or the signed grant digest. The trace
// rides beside the signed material, never inside it — if this test
// fails, observability state has leaked toward cache-key territory.
func TestTraceContextNeverEntersGrantDigest(t *testing.T) {
	req := testReq(t, "sw:vectoradd")
	want, err := jobs.RequestDigest(req)
	if err != nil {
		t.Fatal(err)
	}

	lease := func(traced bool) jobs.Grant {
		led := jobs.NewLedger(jobs.LedgerOptions{TTL: time.Minute})
		if traced {
			led.OfferTraced(req, telemetry.TraceContext{
				Trace: "j000001-test", Origin: "coordinator", Span: 42, Chunk: req.Chunk.ID,
			})
		} else {
			led.Offer(req)
		}
		grants := led.Lease("w1", 1)
		if len(grants) != 1 {
			t.Fatalf("grants = %d", len(grants))
		}
		return grants[0]
	}

	traced, plain := lease(true), lease(false)
	for _, g := range []jobs.Grant{traced, plain} {
		got, err := jobs.RequestDigest(g.Req)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("leased request digest %s != offered %s", got, want)
		}
	}
	sign := func(g jobs.Grant) string {
		signed, err := SignGrant(LeaseGrant{Lease: "L000001-fixed", Worker: "w1", TTLSec: 30, Work: g.Req})
		if err != nil {
			t.Fatal(err)
		}
		return signed.Digest
	}
	if a, b := sign(traced), sign(plain); a != b {
		t.Fatalf("grant digest differs with trace context attached: %s != %s", a, b)
	}
}

// spanIndex indexes a recorder snapshot by span ID for parentage walks.
type spanIndex map[uint64]telemetry.SpanRecord

func indexSpans(spans []telemetry.SpanRecord) spanIndex {
	idx := make(spanIndex, len(spans))
	for _, s := range spans {
		idx[s.ID] = s
	}
	return idx
}

// rootOf walks the parent chain to the top, failing on cycles or
// dangling parent references.
func (idx spanIndex) rootOf(t *testing.T, s telemetry.SpanRecord) telemetry.SpanRecord {
	t.Helper()
	for hops := 0; s.Parent != 0; hops++ {
		if hops > 100 {
			t.Fatalf("parent cycle walking up from span %d (%s)", s.ID, s.Name)
		}
		p, ok := idx[s.Parent]
		if !ok {
			t.Fatalf("span %d (%s) has dangling parent %d", s.ID, s.Name, s.Parent)
		}
		s = p
	}
	return s
}

// TestClusterObservabilityEndToEnd is the fleet-observability acceptance
// test: an in-process coordinator and two workers (each modeling a
// separate process with a private registry and flight recorder) run a
// full campaign. Afterwards the coordinator's recorder must hold ONE
// stitched trace — worker-origin chunk subtrees re-parented under the
// scheduler's job span — /cluster/metrics must aggregate exactly, the
// throughput EWMAs must be nonzero, and the artifacts must still be
// byte-identical to the single-node reference.
func TestClusterObservabilityEndToEnd(t *testing.T) {
	reference := runSingleNode(t, campaignSpec())

	// The scheduler writes job/chunk spans through the process-default
	// recorder; reset it so this test owns its contents.
	rec := telemetry.DefaultRecorder()
	rec.Reset()
	rec.SetOrigin("coordinator")

	dir := t.TempDir()
	coordStore, err := store.Open(dir+"/cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	ledger := jobs.NewLedger(jobs.LedgerOptions{TTL: 5 * time.Second})
	sched, err := jobs.New(jobs.Options{
		Dir: dir + "/jobs", Store: coordStore,
		JobWorkers: 1, ChunkWorkers: 3, Ledger: ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorOptions{Ledger: ledger, Store: coordStore})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched.Start(ctx)
	defer sched.Stop()
	coord.Start(ctx)
	defer coord.Stop()

	var wg sync.WaitGroup
	var workers []*Worker
	for _, name := range []string{"worker-a", "worker-b"} {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorker(WorkerOptions{
			Name: name, Coordinator: srv.URL, Store: st,
			BatchWorkers: 1, MaxLeases: 2, Poll: 10 * time.Millisecond,
			// Private telemetry per worker: separate processes in real
			// deployments, and it keeps the metrics-aggregation assertion
			// honest (nothing shared behind the scenes).
			Registry: telemetry.NewRegistry(),
			Recorder: telemetry.NewFlightRecorder(256),
		})
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}
	defer func() {
		for _, w := range workers {
			w.Stop()
		}
		wg.Wait()
	}()

	status, err := sched.Submit(campaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, sched, status.ID)
	for name, want := range reference {
		got, ok := sched.Artifact(status.ID, name)
		if !ok || string(got) != string(want) {
			t.Fatalf("artifact %s missing or differs from single-node reference", name)
		}
	}
	_ = final

	// --- stitched distributed trace -----------------------------------
	workerOrigins := map[string]bool{"worker-a": true, "worker-b": true}
	// The final complete's point span may still be landing when the job
	// flips done, so evaluate the trace under a deadline.
	deadline := time.Now().Add(10 * time.Second)
	var traceErr string
	for {
		spans, _ := rec.Snapshot()
		traceErr = checkStitchedTrace(spans, status.ID, workerOrigins)
		if traceErr == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stitched trace never converged: %s", traceErr)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Each worker's own recorder holds its chunk subtrees too (the local
	// copy a /debug/trace endpoint would serve).
	sawWorkerCopy := false
	for _, w := range workers {
		spans, _ := w.Recorder().Snapshot()
		for _, s := range spans {
			if strings.HasPrefix(s.Name, "chunk:") && s.Trace == status.ID {
				sawWorkerCopy = true
			}
		}
	}
	if !sawWorkerCopy {
		t.Fatal("no worker recorder kept a local copy of its chunk spans")
	}

	// --- fleet metrics aggregation ------------------------------------
	// Explicit pushes make the test independent of heartbeat cadence.
	for _, w := range workers {
		if err := w.PushMetrics(context.Background()); err != nil {
			t.Fatalf("push metrics: %v", err)
		}
	}
	cm := getClusterMetrics(t, srv.URL)
	if len(cm.Workers) != 2 {
		t.Fatalf("metrics rows = %d, want 2", len(cm.Workers))
	}
	checkMergeArithmetic(t, cm)
	var computed int64
	for _, wm := range cm.Workers {
		if wm.Stale {
			t.Fatalf("worker %s stale right after pushing", wm.Worker)
		}
		computed += wm.Snapshot.Counters["cluster_chunks_computed_total"]
	}
	if computed == 0 {
		t.Fatal("no worker reported computed chunks")
	}
	// The coordinator's own registry may hold computed-chunk counts from
	// other tests sharing the process default; the merge must equal its
	// share plus exactly the workers' sum.
	want := cm.Coordinator.Counters["cluster_chunks_computed_total"] + computed
	if got := cm.Merged.Counters["cluster_chunks_computed_total"]; got != want {
		t.Fatalf("merged computed total = %d, want coordinator+workers = %d", got, want)
	}

	// --- throughput accounting ----------------------------------------
	var wr WorkersResponse
	resp, err := srv.Client().Get(srv.URL + "/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	var chunksRate float64
	var completedTotal int64
	for _, w := range wr.Workers {
		chunksRate += w.Throughput.ChunksPerSec
		completedTotal += w.Completed
	}
	if completedTotal == 0 {
		t.Fatal("no completions recorded in /cluster/workers")
	}
	if chunksRate <= 0 {
		t.Fatalf("fleet chunks/sec EWMA = %v, want > 0 right after a campaign", chunksRate)
	}
}

// checkStitchedTrace validates the coordinator-side trace for one job:
// a single root "job:<id>", worker-origin chunk subtrees whose parent
// chains reach that root, and compute/put children inside them. It
// returns "" when the trace is fully stitched.
func checkStitchedTrace(spans []telemetry.SpanRecord, jobID string, workerOrigins map[string]bool) string {
	idx := indexSpans(spans)
	var root telemetry.SpanRecord
	for _, s := range spans {
		if s.Name == "job:"+jobID {
			root = s
		}
	}
	if root.ID == 0 {
		return fmt.Sprintf("no job root span for %s in %d spans", jobID, len(spans))
	}
	if root.Trace != jobID {
		return fmt.Sprintf("job root carries trace %q, want the job ID", root.Trace)
	}

	chunkRoots := 0
	computeChildren := 0
	putChildren := 0
	for _, s := range spans {
		switch {
		case strings.HasPrefix(s.Name, "chunk:"):
			if !workerOrigins[s.Origin] {
				return fmt.Sprintf("chunk span %s has origin %q, want a worker", s.Name, s.Origin)
			}
			if s.Parent == 0 {
				return fmt.Sprintf("chunk span %s is unparented (remote parent never resolved)", s.Name)
			}
			top := telemetry.SpanRecord{}
			walk := s
			for walk.Parent != 0 {
				p, ok := idx[walk.Parent]
				if !ok {
					return fmt.Sprintf("chunk span %s: dangling parent %d", s.Name, walk.Parent)
				}
				walk = p
			}
			top = walk
			if top.ID != root.ID {
				return fmt.Sprintf("chunk span %s stitches to root %q, want job:%s", s.Name, top.Name, jobID)
			}
			chunkRoots++
		case s.Name == "compute" || s.Name == "put":
			parent, ok := idx[s.Parent]
			if !ok || !strings.HasPrefix(parent.Name, "chunk:") {
				return fmt.Sprintf("%s span not parented on a chunk span", s.Name)
			}
			if !workerOrigins[s.Origin] {
				return fmt.Sprintf("%s span has origin %q, want a worker", s.Name, s.Origin)
			}
			if s.Name == "compute" {
				computeChildren++
			} else {
				putChildren++
			}
		}
	}
	// Every phase of the campaign ran remotely: profile + gates + sw.
	if chunkRoots < 3 {
		return fmt.Sprintf("only %d worker chunk subtrees stitched in", chunkRoots)
	}
	if computeChildren == 0 || putChildren == 0 {
		return fmt.Sprintf("chunk subtrees incomplete: %d compute, %d put children", computeChildren, putChildren)
	}
	// Coordinator-side hand-off point spans share the same trace.
	for _, name := range []string{"lease:", "complete:"} {
		found := false
		for _, s := range spans {
			if strings.HasPrefix(s.Name, name) && s.Trace == jobID {
				found = true
				break
			}
		}
		if !found {
			return fmt.Sprintf("no %q point span in the job trace", name)
		}
	}
	return ""
}
