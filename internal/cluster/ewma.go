package cluster

import (
	"math"
	"time"
)

// rateEWMA estimates an event rate (units/second) with exponential
// decay: each observation is added as an impulse of area n, so the
// estimate integrates to the true total and settles at the true rate
// for a steady stream. Reads decay the estimate toward zero while no
// events arrive, so a stalled worker's throughput visibly dies off
// instead of freezing at its last good value.
//
// The clock comes in as an argument (the coordinator's injectable now
// func): nothing here reads wall time, keeping the package's
// determinism guarantee intact.
type rateEWMA struct {
	tau  float64 // decay time constant, seconds
	last time.Time
	acc  float64 // decayed rate estimate at time `last`
}

// defaultRateTau smooths throughput over ~30s: long enough to ride out
// chunk-granularity burstiness, short enough that a slow worker shows
// up within a couple of lease TTLs.
const defaultRateTau = 30.0

func newRateEWMA(tau float64) rateEWMA {
	if tau <= 0 {
		tau = defaultRateTau
	}
	return rateEWMA{tau: tau}
}

// Observe folds n units arriving at time now into the estimate.
func (e *rateEWMA) Observe(n float64, now time.Time) {
	e.decayTo(now)
	e.acc += n / e.tau
}

// Rate reports the estimated units/second as of now.
func (e *rateEWMA) Rate(now time.Time) float64 {
	e.decayTo(now)
	return e.acc
}

func (e *rateEWMA) decayTo(now time.Time) {
	if e.last.IsZero() {
		e.last = now
		return
	}
	dt := now.Sub(e.last).Seconds()
	if dt <= 0 {
		return
	}
	e.acc *= math.Exp(-dt / e.tau)
	e.last = now
}
