// Package cluster turns faultsimd into a coordinator/worker fleet. The
// coordinator owns job admission and the chunk lease ledger; workers
// join over plain HTTP, lease chunks, compute them with the existing
// executor, and push payloads back under the same content-addressed keys
// — so cross-node deduplication works exactly like intra-node, and final
// artifacts stay byte-identical to a single-node run at any worker
// count. Liveness is heartbeat-driven: a lease that outlives its TTL
// without renewal is expired back to the pending queue and reassigned,
// so worker death costs only the in-flight leases. The coordinator holds
// no cluster state that its job checkpoints cannot rebuild: a restarted
// coordinator recovers every unfinished job and re-offers exactly the
// chunks whose results the store does not already hold.
//
// Protocol (all JSON over the daemon's HTTP surface):
//
//	POST /cluster/lease      LeaseRequest  -> LeaseResponse
//	POST /cluster/complete   CompleteRequest -> CompleteResponse
//	POST /cluster/heartbeat  HeartbeatRequest -> HeartbeatResponse
//	GET  /cluster/workers    -> WorkersResponse
//	GET  /cluster/metrics    -> ClusterMetrics (or Prometheus text with ?format=prometheus)
//	GET  /cluster/chunks/{key} -> payload bytes (dependency read-through)
//
// Observability rides the same wire types: lease responses carry the
// scheduler's per-chunk trace contexts (beside the signed grants, never
// inside them), completions push the worker's span subtree for
// stitching, and heartbeats piggyback schema-tagged registry snapshots
// that the coordinator merges into the fleet-wide /cluster/metrics
// view. None of it enters grant digests or cache keys.
package cluster

//vetsim:deterministic

import (
	"fmt"

	"gpufaultsim/internal/artifact"
	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/telemetry"
)

// protocolSchema versions the wire protocol. It enters every grant
// digest, so a coordinator and worker speaking different protocol
// versions refuse each other's grants instead of miscomputing.
// Schema history: 1 = PR 7 lease protocol; 2 = observability fields
// (trace contexts on leases, span push on complete, metrics on
// heartbeat, throughput on the workers view).
const protocolSchema = 2

// metricsSchema versions the registry-snapshot payload workers push on
// heartbeats. The coordinator ignores snapshots with a different schema
// instead of merging values whose semantics may have shifted.
const metricsSchema = 1

// LeaseRequest asks the coordinator for up to Max chunk leases.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// LeaseGrant hands one chunk to a worker: the lease identity, its TTL,
// the self-contained chunk request, and a digest over all of it. The
// worker recomputes the digest before executing; a mismatch means
// coordinator/worker protocol skew and the grant is refused.
type LeaseGrant struct {
	Lease  string            `json:"lease"`
	Worker string            `json:"worker"`
	TTLSec float64           `json:"ttl_sec"`
	Work   jobs.ChunkRequest `json:"work"`
	Digest string            `json:"digest"`
}

// LeaseResponse carries zero or more grants; empty means no pending
// chunks right now and the worker should poll again. Traces maps lease
// ID → the scheduler's span context for that chunk. It travels beside
// the signed grants — adding it to LeaseGrant would pull observability
// state into grantKey and, transitively, toward cache-key territory
// (the vetsim cachekey analyzer would flag exactly that).
type LeaseResponse struct {
	Grants []LeaseGrant                      `json:"grants"`
	Traces map[string]telemetry.TraceContext `json:"traces,omitempty"`
}

// CompleteRequest pushes one computed payload back. Key must match the
// granted chunk's content-addressed key; Error reports a failed
// computation instead of a payload. Spans is the worker's completed
// span subtree for the chunk (root + compute/put children), ingested by
// the coordinator's flight recorder so the distributed trace stitches.
type CompleteRequest struct {
	Worker  string                 `json:"worker"`
	Lease   string                 `json:"lease"`
	Key     string                 `json:"key"`
	Payload []byte                 `json:"payload,omitempty"`
	Error   string                 `json:"error,omitempty"`
	Spans   []telemetry.SpanRecord `json:"spans,omitempty"`
}

// CompleteResponse reports the ledger outcome: "ok", "late" (the chunk
// was already done — reassigned or deduplicated) or "unknown".
type CompleteResponse struct {
	Status string `json:"status"`
}

// HeartbeatRequest renews the worker's active leases. Metrics, when
// non-nil, is the worker's full registry snapshot tagged with
// MetricsSchema; the coordinator keeps the latest per worker and merges
// them (monotonic-counter-safe) into GET /cluster/metrics. Workers with
// no active leases still heartbeat on a metrics cadence, so an idle
// fleet stays visible.
type HeartbeatRequest struct {
	Worker        string              `json:"worker"`
	Leases        []string            `json:"leases,omitempty"`
	MetricsSchema int                 `json:"metrics_schema,omitempty"`
	Metrics       *telemetry.Snapshot `json:"metrics,omitempty"`
}

// HeartbeatResponse lists the leases that could not be renewed (expired
// and reassigned, or completed elsewhere) so the worker can abandon them.
type HeartbeatResponse struct {
	Renewed int      `json:"renewed"`
	Lost    []string `json:"lost,omitempty"`
}

// WorkerThroughput is the per-worker EWMA throughput view: chunks/sec
// and payload bytes/sec, decayed toward completion events (tau ~30s).
// This is the signal the ROADMAP names as the prerequisite for
// throughput-weighted lease assignment.
type WorkerThroughput struct {
	ChunksPerSec float64 `json:"chunks_per_sec"`
	BytesPerSec  float64 `json:"bytes_per_sec"`
}

// WorkerInfo is one row of the GET /cluster/workers view.
type WorkerInfo struct {
	Name         string           `json:"name"`
	LastSeenSec  float64          `json:"last_seen_sec"`
	Live         bool             `json:"live"`
	ActiveLeases []string         `json:"active_leases,omitempty"`
	Granted      int64            `json:"granted"`
	Completed    int64            `json:"completed"`
	Failed       int64            `json:"failed"`
	Throughput   WorkerThroughput `json:"throughput"`
}

// WorkersResponse is the cluster membership + ledger view.
type WorkersResponse struct {
	Workers []WorkerInfo     `json:"workers"`
	Ledger  jobs.LedgerStats `json:"ledger"`
}

// WorkerMetrics is one worker's contribution to GET /cluster/metrics:
// the latest snapshot it pushed, how old that push is, and whether it
// is stale (older than the liveness window — the merged totals still
// include it, marked, rather than silently dropping completed work).
type WorkerMetrics struct {
	Worker   string             `json:"worker"`
	AgeSec   float64            `json:"age_sec"`
	Stale    bool               `json:"stale"`
	Snapshot telemetry.Snapshot `json:"snapshot"`
}

// ClusterMetrics is the canonical JSON body of GET /cluster/metrics:
// the coordinator's own registry snapshot, each worker's latest pushed
// snapshot, and the fleet-wide merge.
type ClusterMetrics struct {
	Schema      int                `json:"schema"`
	Coordinator telemetry.Snapshot `json:"coordinator"`
	Workers     []WorkerMetrics    `json:"workers"`
	Merged      telemetry.Snapshot `json:"merged"`
}

// grantKeyMaterial is the digested content of a lease grant.
type grantKeyMaterial struct {
	Schema     int     `json:"schema"`
	Lease      string  `json:"lease"`
	Worker     string  `json:"worker"`
	TTLSec     float64 `json:"ttl_sec"`
	WorkDigest string  `json:"work_digest"`
}

// grantKey digests a grant's semantic content: lease identity, TTL and
// the full chunk request (via jobs.RequestDigest), all under
// protocolSchema.
func grantKey(g LeaseGrant) (string, error) {
	wd, err := jobs.RequestDigest(g.Work)
	if err != nil {
		return "", err
	}
	return artifact.Digest(grantKeyMaterial{
		Schema: protocolSchema,
		Lease:  g.Lease, Worker: g.Worker, TTLSec: g.TTLSec,
		WorkDigest: wd,
	})
}

// SignGrant stamps the grant with its digest (coordinator side).
func SignGrant(g LeaseGrant) (LeaseGrant, error) {
	d, err := grantKey(g)
	if err != nil {
		return g, err
	}
	g.Digest = d
	return g, nil
}

// VerifyGrant recomputes the grant digest (worker side). A mismatch
// means the two binaries disagree about protocol or chunk-request
// semantics — refuse the work rather than cache a wrong payload.
//
//vetsim:cachekey-surface
func VerifyGrant(g LeaseGrant) error {
	want, err := grantKey(g)
	if err != nil {
		return err
	}
	if g.Digest != want {
		return fmt.Errorf("cluster: grant %s digest mismatch (coordinator/worker protocol skew?)", g.Lease)
	}
	return nil
}
