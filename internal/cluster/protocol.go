// Package cluster turns faultsimd into a coordinator/worker fleet. The
// coordinator owns job admission and the chunk lease ledger; workers
// join over plain HTTP, lease chunks, compute them with the existing
// executor, and push payloads back under the same content-addressed keys
// — so cross-node deduplication works exactly like intra-node, and final
// artifacts stay byte-identical to a single-node run at any worker
// count. Liveness is heartbeat-driven: a lease that outlives its TTL
// without renewal is expired back to the pending queue and reassigned,
// so worker death costs only the in-flight leases. The coordinator holds
// no cluster state that its job checkpoints cannot rebuild: a restarted
// coordinator recovers every unfinished job and re-offers exactly the
// chunks whose results the store does not already hold.
//
// Protocol (all JSON over the daemon's HTTP surface):
//
//	POST /cluster/lease      LeaseRequest  -> LeaseResponse
//	POST /cluster/complete   CompleteRequest -> CompleteResponse
//	POST /cluster/heartbeat  HeartbeatRequest -> HeartbeatResponse
//	GET  /cluster/workers    -> WorkersResponse
//	GET  /cluster/chunks/{key} -> payload bytes (dependency read-through)
package cluster

//vetsim:deterministic

import (
	"fmt"

	"gpufaultsim/internal/artifact"
	"gpufaultsim/internal/jobs"
)

// protocolSchema versions the wire protocol. It enters every grant
// digest, so a coordinator and worker speaking different protocol
// versions refuse each other's grants instead of miscomputing.
const protocolSchema = 1

// LeaseRequest asks the coordinator for up to Max chunk leases.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// LeaseGrant hands one chunk to a worker: the lease identity, its TTL,
// the self-contained chunk request, and a digest over all of it. The
// worker recomputes the digest before executing; a mismatch means
// coordinator/worker protocol skew and the grant is refused.
type LeaseGrant struct {
	Lease  string            `json:"lease"`
	Worker string            `json:"worker"`
	TTLSec float64           `json:"ttl_sec"`
	Work   jobs.ChunkRequest `json:"work"`
	Digest string            `json:"digest"`
}

// LeaseResponse carries zero or more grants; empty means no pending
// chunks right now and the worker should poll again.
type LeaseResponse struct {
	Grants []LeaseGrant `json:"grants"`
}

// CompleteRequest pushes one computed payload back. Key must match the
// granted chunk's content-addressed key; Error reports a failed
// computation instead of a payload.
type CompleteRequest struct {
	Worker  string `json:"worker"`
	Lease   string `json:"lease"`
	Key     string `json:"key"`
	Payload []byte `json:"payload,omitempty"`
	Error   string `json:"error,omitempty"`
}

// CompleteResponse reports the ledger outcome: "ok", "late" (the chunk
// was already done — reassigned or deduplicated) or "unknown".
type CompleteResponse struct {
	Status string `json:"status"`
}

// HeartbeatRequest renews the worker's active leases.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	Leases []string `json:"leases,omitempty"`
}

// HeartbeatResponse lists the leases that could not be renewed (expired
// and reassigned, or completed elsewhere) so the worker can abandon them.
type HeartbeatResponse struct {
	Renewed int      `json:"renewed"`
	Lost    []string `json:"lost,omitempty"`
}

// WorkerInfo is one row of the GET /cluster/workers view.
type WorkerInfo struct {
	Name         string   `json:"name"`
	LastSeenSec  float64  `json:"last_seen_sec"`
	Live         bool     `json:"live"`
	ActiveLeases []string `json:"active_leases,omitempty"`
	Granted      int64    `json:"granted"`
	Completed    int64    `json:"completed"`
	Failed       int64    `json:"failed"`
}

// WorkersResponse is the cluster membership + ledger view.
type WorkersResponse struct {
	Workers []WorkerInfo     `json:"workers"`
	Ledger  jobs.LedgerStats `json:"ledger"`
}

// grantKeyMaterial is the digested content of a lease grant.
type grantKeyMaterial struct {
	Schema     int     `json:"schema"`
	Lease      string  `json:"lease"`
	Worker     string  `json:"worker"`
	TTLSec     float64 `json:"ttl_sec"`
	WorkDigest string  `json:"work_digest"`
}

// grantKey digests a grant's semantic content: lease identity, TTL and
// the full chunk request (via jobs.RequestDigest), all under
// protocolSchema.
func grantKey(g LeaseGrant) (string, error) {
	wd, err := jobs.RequestDigest(g.Work)
	if err != nil {
		return "", err
	}
	return artifact.Digest(grantKeyMaterial{
		Schema: protocolSchema,
		Lease:  g.Lease, Worker: g.Worker, TTLSec: g.TTLSec,
		WorkDigest: wd,
	})
}

// SignGrant stamps the grant with its digest (coordinator side).
func SignGrant(g LeaseGrant) (LeaseGrant, error) {
	d, err := grantKey(g)
	if err != nil {
		return g, err
	}
	g.Digest = d
	return g, nil
}

// VerifyGrant recomputes the grant digest (worker side). A mismatch
// means the two binaries disagree about protocol or chunk-request
// semantics — refuse the work rather than cache a wrong payload.
//
//vetsim:cachekey-surface
func VerifyGrant(g LeaseGrant) error {
	want, err := grantKey(g)
	if err != nil {
		return err
	}
	if g.Digest != want {
		return fmt.Errorf("cluster: grant %s digest mismatch (coordinator/worker protocol skew?)", g.Lease)
	}
	return nil
}
