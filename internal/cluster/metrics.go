package cluster

//vetsim:instrumented

import (
	"net/http"
	"sort"

	"gpufaultsim/internal/telemetry"
)

// absorbMetrics stores a worker's freshly pushed registry snapshot and
// advances its high-water contribution floors. The floors are what make
// the fleet-wide merge monotonic-counter-safe: a worker that restarts
// resets its own counters to zero, but the work it already reported
// stays in the merged totals at the floor. Called with c.mu NOT held.
func (c *Coordinator) absorbMetrics(ws *workerState, snap *telemetry.Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws.metrics = snap
	ws.metricsAt = c.now()
	for k, v := range snap.Counters {
		if v > ws.floorInt[k] {
			ws.floorInt[k] = v
		}
	}
	for k, v := range snap.FloatCounters {
		if v > ws.floorFloat[k] {
			ws.floorFloat[k] = v
		}
	}
}

// contribution builds the snapshot a worker contributes to the merge:
// counters come from the high-water floors (monotonic across restarts),
// everything instantaneous (gauges, histograms) from the latest push.
// Caller holds c.mu.
func (ws *workerState) contribution() telemetry.Snapshot {
	out := telemetry.Snapshot{
		Counters:      make(map[string]int64, len(ws.floorInt)),
		FloatCounters: make(map[string]float64, len(ws.floorFloat)),
		Gauges:        map[string]int64{},
		FloatGauges:   map[string]float64{},
		Histograms:    map[string]telemetry.HistogramSnapshot{},
	}
	for k, v := range ws.floorInt {
		out.Counters[k] = v
	}
	for k, v := range ws.floorFloat {
		out.FloatCounters[k] = v
	}
	if ws.metrics != nil {
		for k, v := range ws.metrics.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range ws.metrics.FloatGauges {
			out.FloatGauges[k] = v
		}
		for k, h := range ws.metrics.Histograms {
			out.Histograms[k] = h
		}
	}
	return out
}

// handleClusterMetrics serves the fleet-wide metrics view: the
// coordinator's own registry snapshot merged with every worker's pushed
// contribution. Workers whose last push predates the liveness window are
// marked stale but still merged — completed work does not vanish from
// the totals when its worker goes quiet. ?format=prometheus renders the
// merged snapshot as Prometheus text; the default is canonical JSON with
// the per-role breakdown.
func (c *Coordinator) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	merged := c.reg.Snapshot()
	resp := ClusterMetrics{Schema: metricsSchema, Coordinator: c.reg.Snapshot()}

	c.mu.Lock()
	names := make([]string, 0, len(c.workers))
	for name, ws := range c.workers {
		if ws.metrics == nil {
			continue // never pushed metrics: nothing to merge or show
		}
		names = append(names, name)
	}
	sort.Strings(names)
	now := c.now()
	for _, name := range names {
		ws := c.workers[name]
		age := now.Sub(ws.metricsAt)
		contrib := ws.contribution()
		telemetry.MergeInto(&merged, contrib)
		resp.Workers = append(resp.Workers, WorkerMetrics{
			Worker:   name,
			AgeSec:   age.Seconds(),
			Stale:    age > c.liveWindow(),
			Snapshot: contrib,
		})
	}
	c.mu.Unlock()

	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		telemetry.WriteSnapshotPrometheus(w, merged)
		return
	}
	resp.Merged = merged
	clusterJSON(w, http.StatusOK, resp)
}
