package cluster

import (
	"math"
	"testing"
	"time"
)

// TestRateEWMASteadyStreamConvergesToTrueRate drives one event per
// second through the estimator for many time constants and checks the
// estimate settles at ~1/s: the impulse-integral construction means a
// steady stream converges to its true rate, not some scaled version.
func TestRateEWMASteadyStreamConvergesToTrueRate(t *testing.T) {
	e := newRateEWMA(30)
	now := time.Unix(1_000_000, 0)
	for i := 0; i < 300; i++ { // 10 taus: fully converged
		e.Observe(1, now)
		now = now.Add(time.Second)
	}
	if r := e.Rate(now); math.Abs(r-1.0) > 0.05 {
		t.Fatalf("steady 1/s stream: Rate = %v, want ~1.0", r)
	}
}

func TestRateEWMADecaysWhileIdle(t *testing.T) {
	e := newRateEWMA(30)
	now := time.Unix(1_000_000, 0)
	e.Observe(60, now) // one burst, then silence
	r0 := e.Rate(now)
	if r0 != 60.0/30 {
		t.Fatalf("burst rate = %v, want n/tau = 2", r0)
	}
	r1 := e.Rate(now.Add(30 * time.Second))
	if want := r0 * math.Exp(-1); math.Abs(r1-want) > 1e-9 {
		t.Fatalf("after one tau idle: Rate = %v, want %v", r1, want)
	}
	if r2 := e.Rate(now.Add(10 * time.Minute)); r2 > 1e-6 {
		t.Fatalf("long-idle rate = %v, want ~0 (stalled workers must visibly die off)", r2)
	}
}

// TestRateEWMAFirstObservationPinsClock checks the zero-value clock is
// pinned on first contact rather than decayed from the epoch: the first
// observation must land at full weight.
func TestRateEWMAFirstObservationPinsClock(t *testing.T) {
	e := newRateEWMA(30)
	now := time.Unix(1_000_000, 0)
	e.Observe(30, now)
	if r := e.Rate(now); r != 1.0 {
		t.Fatalf("first observation: Rate = %v, want n/tau = 1.0", r)
	}
}

// TestRateEWMANonMonotonicClockIsSafe feeds a read timestamp earlier
// than the last observation; the estimate must hold rather than decay by
// a negative dt (which would inflate it).
func TestRateEWMANonMonotonicClockIsSafe(t *testing.T) {
	e := newRateEWMA(30)
	now := time.Unix(1_000_000, 0)
	e.Observe(30, now)
	if r := e.Rate(now.Add(-time.Minute)); r != 1.0 {
		t.Fatalf("backwards read: Rate = %v, want 1.0 unchanged", r)
	}
}

func TestRateEWMADefaultTau(t *testing.T) {
	for _, tau := range []float64{0, -5} {
		if e := newRateEWMA(tau); e.tau != defaultRateTau {
			t.Fatalf("newRateEWMA(%v).tau = %v, want default %v", tau, e.tau, defaultRateTau)
		}
	}
}
