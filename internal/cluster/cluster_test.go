package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
)

// testReq builds a minimal valid chunk request whose key is derived from
// id so distinct requests never collide in the ledger or store. The spec
// digest machinery doubles as a convenient source of well-formed hex keys.
func testReq(t *testing.T, id string) jobs.ChunkRequest {
	t.Helper()
	spec := jobs.Spec{Seed: 7, MaxPatterns: 16, Injections: 2,
		Apps: []string{"vectoradd"}, Profiling: []string{"vectoradd"}}
	var seed int64
	for _, c := range id {
		seed = seed*31 + int64(c)
	}
	key, err := jobs.Spec{Seed: seed, Apps: []string{"vectoradd"}, Profiling: []string{"vectoradd"}}.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return jobs.ChunkRequest{
		Job:   "j000001-test",
		Chunk: jobs.Chunk{ID: id, Phase: jobs.PhaseSoftware, Arg: "vectoradd"},
		Spec:  spec,
		Key:   key,
	}
}

func newTestCoordinator(t *testing.T, ttl time.Duration) (*Coordinator, *jobs.Ledger, *store.Store, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	led := jobs.NewLedger(jobs.LedgerOptions{TTL: ttl})
	c, err := NewCoordinator(CoordinatorOptions{Ledger: led, Store: st, SweepEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, led, st, srv
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestGrantSignAndVerify(t *testing.T) {
	g, err := SignGrant(LeaseGrant{Lease: "L000001-abcd", Worker: "w1", TTLSec: 30, Work: testReq(t, "sw:vectoradd")})
	if err != nil {
		t.Fatal(err)
	}
	if g.Digest == "" {
		t.Fatal("signed grant has empty digest")
	}
	if err := VerifyGrant(g); err != nil {
		t.Fatalf("fresh grant failed verification: %v", err)
	}
	tampered := g
	tampered.Work.Key = g.Work.Key[:len(g.Work.Key)-1] + "0"
	if err := VerifyGrant(tampered); err == nil {
		t.Fatal("tampered grant passed verification")
	}
	tampered = g
	tampered.TTLSec = 99
	if err := VerifyGrant(tampered); err == nil {
		t.Fatal("TTL-tampered grant passed verification")
	}
}

func TestLeaseCompleteRoundTrip(t *testing.T) {
	_, led, st, srv := newTestCoordinator(t, time.Minute)
	req := testReq(t, "sw:vectoradd")
	led.Offer(req)

	var lr LeaseResponse
	if code := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "w1", Max: 4}, &lr); code != 200 {
		t.Fatalf("lease status = %d", code)
	}
	if len(lr.Grants) != 1 {
		t.Fatalf("grants = %d, want 1", len(lr.Grants))
	}
	g := lr.Grants[0]
	if err := VerifyGrant(g); err != nil {
		t.Fatalf("coordinator issued unverifiable grant: %v", err)
	}
	if g.Work.Key != req.Key {
		t.Fatalf("granted key %s, offered %s", g.Work.Key, req.Key)
	}

	var cr CompleteResponse
	payload := []byte(`{"ok":true}`)
	postJSON(t, srv.URL+"/cluster/complete",
		CompleteRequest{Worker: "w1", Lease: g.Lease, Key: g.Work.Key, Payload: payload}, &cr)
	if cr.Status != string(jobs.CompleteOK) {
		t.Fatalf("complete status = %q, want ok", cr.Status)
	}
	if b, ok := st.Get(req.Key); !ok || !bytes.Equal(b, payload) {
		t.Fatalf("payload not in coordinator store: %q, %v", b, ok)
	}
	if err := led.Wait(context.Background(), req.Key); err != nil {
		t.Fatalf("ledger wait after complete: %v", err)
	}

	// A duplicate completion (expired lease delivering late) is "late".
	postJSON(t, srv.URL+"/cluster/complete",
		CompleteRequest{Worker: "w2", Lease: "L999999-stale", Key: g.Work.Key, Payload: payload}, &cr)
	if cr.Status != string(jobs.CompleteLate) {
		t.Fatalf("duplicate complete status = %q, want late", cr.Status)
	}
}

func TestCompleteUnknownKeyRejected(t *testing.T) {
	_, _, st, srv := newTestCoordinator(t, time.Minute)
	req := testReq(t, "sw:vectoradd")
	var cr CompleteResponse
	postJSON(t, srv.URL+"/cluster/complete",
		CompleteRequest{Worker: "w1", Lease: "L000001-xxxx", Key: req.Key, Payload: []byte("x")}, &cr)
	if cr.Status != string(jobs.CompleteUnknown) {
		t.Fatalf("status = %q, want unknown", cr.Status)
	}
	// The payload still landed in the store (content-addressed, harmless)
	// but the ledger rejected the completion.
	if _, ok := st.Get(req.Key); !ok {
		t.Fatal("content-addressed payload should still be stored")
	}
}

func TestErrorCompleteFailsChunk(t *testing.T) {
	_, led, st, srv := newTestCoordinator(t, time.Minute)
	req := testReq(t, "sw:vectoradd")
	led.Offer(req)
	var lr LeaseResponse
	postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "w1", Max: 1}, &lr)
	var cr CompleteResponse
	postJSON(t, srv.URL+"/cluster/complete",
		CompleteRequest{Worker: "w1", Lease: lr.Grants[0].Lease, Key: req.Key, Error: "boom"}, &cr)
	if cr.Status != string(jobs.CompleteOK) {
		t.Fatalf("error complete status = %q, want ok", cr.Status)
	}
	if err := led.Wait(context.Background(), req.Key); err == nil {
		t.Fatal("wait on failed chunk returned nil")
	}
	if _, ok := st.Get(req.Key); ok {
		t.Fatal("failed completion must not store a payload")
	}
}

func TestHeartbeatRenewsAndReportsLost(t *testing.T) {
	_, led, _, srv := newTestCoordinator(t, time.Minute)
	led.Offer(testReq(t, "sw:vectoradd"))
	var lr LeaseResponse
	postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "w1", Max: 1}, &lr)

	var hr HeartbeatResponse
	postJSON(t, srv.URL+"/cluster/heartbeat",
		HeartbeatRequest{Worker: "w1", Leases: []string{lr.Grants[0].Lease, "L999999-gone"}}, &hr)
	if hr.Renewed != 1 {
		t.Fatalf("renewed = %d, want 1", hr.Renewed)
	}
	if len(hr.Lost) != 1 || hr.Lost[0] != "L999999-gone" {
		t.Fatalf("lost = %v, want the stale lease", hr.Lost)
	}
}

func TestWorkersViewSortedWithLedgerStats(t *testing.T) {
	_, led, _, srv := newTestCoordinator(t, time.Minute)
	led.Offer(testReq(t, "sw:vectoradd"))
	for _, w := range []string{"zeta", "alpha", "mid"} {
		postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: w, Max: 1}, &LeaseResponse{})
	}
	resp, err := http.Get(srv.URL + "/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wr WorkersResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Workers) != 3 {
		t.Fatalf("workers = %d, want 3", len(wr.Workers))
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if wr.Workers[i].Name != want {
			t.Fatalf("worker[%d] = %s, want %s (sorted order)", i, wr.Workers[i].Name, want)
		}
		if !wr.Workers[i].Live {
			t.Fatalf("worker %s not live immediately after contact", want)
		}
	}
	// zeta leased first and holds the only chunk.
	if wr.Ledger.Leased != 1 || wr.Ledger.Pending != 0 {
		t.Fatalf("ledger stats = %+v", wr.Ledger)
	}
}

func TestChunkEndpointServesAndMisses(t *testing.T) {
	_, _, st, srv := newTestCoordinator(t, time.Minute)
	req := testReq(t, "sw:vectoradd")
	if err := st.Put(req.Key, []byte("dep-payload")); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/cluster/chunks/" + req.Key)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 64)
	n, _ := resp.Body.Read(b)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(b[:n]) != "dep-payload" {
		t.Fatalf("chunk fetch = %d %q", resp.StatusCode, b[:n])
	}
	resp, err = http.Get(srv.URL + "/cluster/chunks/" + testReq(t, "other").Key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing chunk status = %d, want 404", resp.StatusCode)
	}
}

func TestExpiredLeaseReassignedToSecondWorker(t *testing.T) {
	c, led, _, srv := newTestCoordinator(t, 50*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Stop()

	led.Offer(testReq(t, "sw:vectoradd"))
	var lr LeaseResponse
	postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "dead", Max: 1}, &lr)
	if len(lr.Grants) != 1 {
		t.Fatalf("grants = %d", len(lr.Grants))
	}
	// "dead" never heartbeats; the sweeper must return the chunk to
	// pending and a second worker must receive it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var lr2 LeaseResponse
		postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "alive", Max: 1}, &lr2)
		if len(lr2.Grants) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease never reassigned")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if led.Reassignments() == 0 {
		t.Fatal("reassignment counter not incremented")
	}
}

func TestWorkerRejectsBadRequests(t *testing.T) {
	_, _, _, srv := newTestCoordinator(t, time.Minute)
	if code := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("nameless lease status = %d, want 400", code)
	}
	if code := postJSON(t, srv.URL+"/cluster/complete", CompleteRequest{Worker: "w"}, nil); code != http.StatusBadRequest {
		t.Fatalf("keyless complete status = %d, want 400", code)
	}
}
