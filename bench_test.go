// Package gpufaultsim's top-level benchmark harness: one benchmark per
// table and figure of the paper (see DESIGN.md's per-experiment index),
// plus ablation benchmarks for the design choices the reproduction makes.
//
// Benchmarks run scaled-down campaigns (the full paper scale is available
// through cmd/repro -scale paper) and attach the headline measured numbers
// as custom benchmark metrics, so `go test -bench . -benchmem` regenerates
// the shape of every exhibit.
package gpufaultsim

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"gpufaultsim/internal/analyze"
	"gpufaultsim/internal/campaign"
	"gpufaultsim/internal/cnn"
	"gpufaultsim/internal/errclass"
	"gpufaultsim/internal/errmodel"
	"gpufaultsim/internal/gatesim"
	"gpufaultsim/internal/gpu"
	"gpufaultsim/internal/isa"
	"gpufaultsim/internal/mitigate"
	"gpufaultsim/internal/netlist"
	"gpufaultsim/internal/perfi"
	"gpufaultsim/internal/profiler"
	"gpufaultsim/internal/report"
	"gpufaultsim/internal/rtlfi"
	"gpufaultsim/internal/syndrome"
	"gpufaultsim/internal/units"
	"gpufaultsim/internal/workloads"
)

// envInt lets CI scale campaign sizes (e.g. GPUFAULTSIM_INJECTIONS=1000).
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// --- Table 1 -----------------------------------------------------------------

func BenchmarkTable1Applications(b *testing.B) {
	apps := cnn.Evaluation15()
	for i := 0; i < b.N; i++ {
		if txt := report.Table1(apps); len(txt) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Table 3 -----------------------------------------------------------------

func BenchmarkTable3AreaUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prof, err := profiler.Collect(workloads.Profiling(), profiler.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = report.Table3(prof)
		b.ReportMetric(100*prof.Utilization(isa.UnitFP32), "fp32-util-%")
		b.ReportMetric(float64(len(prof.Patterns)), "patterns")
	}
}

// gateArtifacts runs the gate-level campaigns once per benchmark iteration.
func gateArtifacts(b *testing.B, patterns int) ([]*gatesim.Summary, map[string]*errclass.Collector, map[string]int) {
	b.Helper()
	prof, err := profiler.Collect(
		[]workloads.Workload{workloads.VectorAdd{}, workloads.GEMM{}, workloads.BFS{}, workloads.FFT{}},
		profiler.Config{Seed: 1, MaxPatterns: patterns})
	if err != nil {
		b.Fatal(err)
	}
	pats := prof.TopPatterns(patterns)
	var sums []*gatesim.Summary
	cols := map[string]*errclass.Collector{}
	totals := map[string]int{}
	for _, u := range units.All() {
		col := errclass.NewCollector(u.Name)
		sums = append(sums, gatesim.Campaign(u, pats, col))
		cols[u.Name] = col
		totals[u.Name] = u.NL.NumFaults()
	}
	return sums, cols, totals
}

// --- Table 4 -----------------------------------------------------------------

func BenchmarkTable4FaultClassification(b *testing.B) {
	pats := envInt("GPUFAULTSIM_PATTERNS", 64)
	for i := 0; i < b.N; i++ {
		sums, _, _ := gateArtifacts(b, pats)
		_ = report.Table4(sums)
		for _, s := range sums {
			if s.Unit == "decoder" {
				b.ReportMetric(100*s.Fraction(gatesim.SWError), "decoder-swerr-%")
			}
		}
	}
}

// --- Table 5 -----------------------------------------------------------------

func BenchmarkTable5AVFPerError(b *testing.B) {
	pats := envInt("GPUFAULTSIM_PATTERNS", 64)
	for i := 0; i < b.N; i++ {
		sums, cols, _ := gateArtifacts(b, pats)
		var reports []*errclass.UnitReport
		for _, s := range sums {
			reports = append(reports, errclass.Report(s, cols[s.Unit]))
		}
		txt := report.Table5(reports)
		if len(txt) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Figure 2 ----------------------------------------------------------------

func BenchmarkFig2MicrobenchAVF(b *testing.B) {
	cfg := rtlfi.MicroConfig{Seed: 1, ValuesPerRange: 1, LanesSampled: 1}
	for i := 0; i < b.N; i++ {
		rows, _ := rtlfi.Figure2(cfg)
		_ = report.Fig2(rows)
		for _, r := range rows {
			if r.Op == isa.OpIADD && r.Module == rtlfi.ModINT {
				b.ReportMetric(100*r.AVF(), "iadd-int-avf-%")
			}
			if r.Op == isa.OpFADD && r.Module == rtlfi.ModFP32 {
				b.ReportMetric(100*r.AVF(), "fadd-fp32-avf-%")
			}
		}
	}
}

// --- Figures 4-5 --------------------------------------------------------------

func BenchmarkFig4Fig5Syndrome(b *testing.B) {
	cfg := rtlfi.MicroConfig{Seed: 1, ValuesPerRange: 2, LanesSampled: 2}
	for i := 0; i < b.N; i++ {
		_, pairs := rtlfi.MicroAVF(isa.OpFMUL, rtlfi.ModFP32, cfg)
		res := rtlfi.RelativeErrors(pairs, true)
		h := syndrome.Build(res)
		_ = report.SyndromeHistogram("FMUL/FP32", h)
		if fit, err := syndrome.Fit(res); err == nil {
			b.ReportMetric(fit.Alpha, "power-law-alpha")
		}
	}
}

// --- Figure 6 -----------------------------------------------------------------

func BenchmarkFig6TMxMAVF(b *testing.B) {
	stride := envInt("GPUFAULTSIM_TMXM_STRIDE", 24)
	for i := 0; i < b.N; i++ {
		st := rtlfi.RunTMxMStudy(rtlfi.TMxMConfig{Seed: 1, ValuesPerTile: 1, SiteStride: stride})
		_ = report.Fig6(st.Rows)
		for _, r := range st.Rows {
			if r.Module == rtlfi.ModSched && r.Tile == rtlfi.TileRandom {
				b.ReportMetric(100*(r.SDCSingle+r.SDCMulti+r.DUE), "sched-avf-%")
			}
		}
	}
}

// --- Table 2 / Figure 7 ---------------------------------------------------------

func BenchmarkTable2SpatialPatterns(b *testing.B) {
	stride := envInt("GPUFAULTSIM_TMXM_STRIDE", 24)
	for i := 0; i < b.N; i++ {
		st := rtlfi.RunTMxMStudy(rtlfi.TMxMConfig{Seed: 2, ValuesPerTile: 1, SiteStride: stride})
		_ = report.Table2(st)
		multi := 0
		for _, counts := range st.Patterns {
			for _, n := range counts {
				multi += n
			}
		}
		b.ReportMetric(float64(multi), "multi-events")
	}
}

// --- Figure 8 -----------------------------------------------------------------

func BenchmarkFig8SyndromeVariance(b *testing.B) {
	stride := envInt("GPUFAULTSIM_TMXM_STRIDE", 24)
	for i := 0; i < b.N; i++ {
		st := rtlfi.RunTMxMStudy(rtlfi.TMxMConfig{Seed: 3, ValuesPerTile: 1, SiteStride: stride})
		_ = report.Fig8(st)
	}
}

// --- Figure 9 -----------------------------------------------------------------

func BenchmarkFig9FAPR(b *testing.B) {
	pats := envInt("GPUFAULTSIM_PATTERNS", 64)
	for i := 0; i < b.N; i++ {
		_, cols, totals := gateArtifacts(b, pats)
		_ = report.Fig9(cols, totals)
		b.ReportMetric(100*cols["wsc"].FAPR(errmodel.IAT, totals["wsc"]), "wsc-iat-fapr-%")
	}
}

// --- Figure 10 ----------------------------------------------------------------

func BenchmarkFig10EPRPerApp(b *testing.B) {
	inj := envInt("GPUFAULTSIM_INJECTIONS", 10)
	apps := cnn.Evaluation15()
	for i := 0; i < b.N; i++ {
		results, err := perfi.RunSuite(apps, perfi.Config{Injections: inj, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = report.Fig10(results, errmodel.Injectable())
		var epr float64
		n := 0
		for _, r := range results {
			for _, m := range errmodel.Injectable() {
				epr += r.EPR(m)
				n++
			}
		}
		b.ReportMetric(100*epr/float64(n), "avg-epr-%")
	}
}

// --- Figure 11 ----------------------------------------------------------------

func BenchmarkFig11AverageEPR(b *testing.B) {
	inj := envInt("GPUFAULTSIM_INJECTIONS", 10)
	apps := []workloads.Workload{
		workloads.VectorAdd{}, workloads.GEMM{}, workloads.BFS{},
		workloads.MergeSort{}, cnn.LeNet{Digit: 3},
	}
	for i := 0; i < b.N; i++ {
		results, err := perfi.RunSuite(apps, perfi.Config{Injections: inj, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		avg := perfi.Average(results)
		_ = report.Fig11(avg, errmodel.Injectable())
		t := avg[errmodel.IAT]
		_, sdc, _ := t.Rate()
		b.ReportMetric(100*sdc, "iat-sdc-%")
	}
}

// --- Speed-up accounting ---------------------------------------------------------

func BenchmarkSpeedupAccounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := campaign.RunTwoLevel(campaign.TwoLevelConfig{
			Seed: 1, MaxPatterns: 48, Injections: 4,
			ProfilingWorkloads: []workloads.Workload{workloads.VectorAdd{}, workloads.GEMM{}},
			EvalApps:           []workloads.Workload{workloads.VectorAdd{}},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Timing.Report()
		b.ReportMetric(res.Timing.GateSec, "gate-sec")
	}
}

// --- Ablations -------------------------------------------------------------------

// BenchmarkAblationParallelFaultSim compares the 64-way bit-parallel fault
// simulation against classic serial simulation (one faulty machine per
// evaluation pass) over the same 512-fault subset of the decoder's list.
func BenchmarkAblationParallelFaultSim(b *testing.B) {
	u := units.Decoder()
	p := units.Pattern{
		Word:      isa.Instruction{Op: isa.OpFFMA, Pred: isa.PT, Rd: 1, Rs1: 2, Rs2: 3, Rs3: 4}.Encode(),
		WarpValid: 0xF, WarpReady: 0xF, ActiveMask: ^uint32(0),
	}
	faults := netlist.FaultList(u.NL)[:512]

	run := func(groupSize int) {
		sim := netlist.NewSimulator(u.NL)
		for base := 0; base < len(faults); base += groupSize {
			end := base + groupSize
			if end > len(faults) {
				end = len(faults)
			}
			sim.Reset()
			sim.SetFaults(faults[base:end])
			for c := 0; c < u.Cycles; c++ {
				u.Drive(sim, p, c)
				sim.Step()
			}
		}
	}
	b.Run("parallel64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(64)
		}
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(1)
		}
	})
}

// BenchmarkAblationPatternDedup measures the stimulus compression from
// deduplicating dynamic instructions into unique exciting patterns, both
// globally and after each unit's Reduce projection (the form the
// campaigns actually exploit).
func BenchmarkAblationPatternDedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prof, err := profiler.Collect(
			[]workloads.Workload{workloads.MxM{}, workloads.GEMM{}},
			profiler.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(prof.DynInstrs)/float64(len(prof.Patterns)), "global-dedup-x")
		for _, u := range units.All() {
			reduced := u.ReducePatterns(prof.Patterns)
			b.ReportMetric(float64(prof.DynInstrs)/float64(len(reduced)), u.Name+"-dedup-x")
		}
	}
}

// BenchmarkAblationWorkers measures the campaign worker pool at different
// widths (wall-clock effect depends on available cores).
func BenchmarkAblationWorkers(b *testing.B) {
	apps := []workloads.Workload{workloads.VectorAdd{}, workloads.MxM{},
		workloads.GrayFilter{}, workloads.SVMul{}}
	cfg := perfi.Config{Injections: 4, Seed: 1,
		Models: []errmodel.Model{errmodel.IAT, errmodel.IOC}}
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := campaign.RunSuiteParallel(apps, cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFullCampaign / BenchmarkCollapsedCampaign measure the payoff of
// static fault collapsing on the decoder: the collapsed run simulates one
// representative per equivalence class and expands the results, producing
// byte-identical summaries while shedding a reported fraction of the fault
// list. BenchmarkFullCampaign pins the dense reference engine explicitly —
// Campaign defaults to the event engine — so the pair
// BenchmarkFullCampaign/BenchmarkEventCampaign stays a true engine A/B on
// the same decoder campaign (scripts/bench_compare.sh gates on the ratio).
// Both pin Workers to 1: the A/B isolates the engines, and the parallel
// scaling has its own benchmark (BenchmarkParallelCampaignWSC).
func BenchmarkFullCampaign(b *testing.B) {
	u := units.Decoder()
	patterns := campaignPatterns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := gatesim.CampaignCfg(u, patterns, nil, gatesim.Config{Engine: gatesim.EngineFull, Workers: 1})
		b.ReportMetric(float64(sum.SimulatedSites), "sim-faults")
	}
}

// BenchmarkEventCampaign is the same decoder campaign on the levelized
// event-driven engine (the default). ReportAllocs feeds the allocation
// regression gate in scripts/verify.sh: the campaign's allocations are
// per-campaign setup only, so allocs/op must stay flat as the hot loop
// evolves.
func BenchmarkEventCampaign(b *testing.B) {
	u := units.Decoder()
	patterns := campaignPatterns(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := gatesim.CampaignCfg(u, patterns, nil, gatesim.Config{Engine: gatesim.EngineEvent, Workers: 1})
		b.ReportMetric(float64(sum.SimulatedSites), "sim-faults")
	}
}

// BenchmarkParallelCampaignWSC measures intra-campaign fault-batch
// sharding on the WSC — the largest netlist, the paper's dominant
// campaign cost. Sub-benchmarks sweep the worker width over the same
// campaign (byte-identical results); scripts/bench_compare.sh turns the
// 1/2/4-worker rows into BENCH_parallel.json and gates the 4-worker
// speedup on multi-core hosts. Width 1 uses the serial reference path —
// the honest baseline, with zero sharding overhead.
//
// With GPUFAULTSIM_TIMELINE_OUT set, the widest width additionally runs
// one instrumented campaign after timing and writes its shard
// utilization timeline there (timeline recording is gated, so the timed
// iterations stay allocation-free).
func BenchmarkParallelCampaignWSC(b *testing.B) {
	u := units.WSC()
	patterns := campaignPatterns(b)
	widths := []int{1, 2, 4}
	for _, workers := range widths {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sum := gatesim.CampaignCfg(u, patterns, nil, gatesim.Config{Engine: gatesim.EngineEvent, Workers: workers})
				b.ReportMetric(float64(sum.SimulatedSites), "sim-faults")
			}
		})
	}
	if out := os.Getenv("GPUFAULTSIM_TIMELINE_OUT"); out != "" {
		tl := &gatesim.ShardTimeline{}
		gatesim.CampaignCfg(u, patterns, nil,
			gatesim.Config{Engine: gatesim.EngineEvent, Workers: widths[len(widths)-1], Timeline: tl})
		f, err := os.Create(out)
		if err != nil {
			b.Fatalf("timeline out: %v", err)
		}
		defer f.Close()
		if err := tl.WriteJSON(f); err != nil {
			b.Fatalf("timeline write: %v", err)
		}
	}
}

func BenchmarkCollapsedCampaign(b *testing.B) {
	u := units.Decoder()
	patterns := campaignPatterns(b)
	cm := analyze.Collapse(u.NL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := gatesim.CampaignCollapsed(u, patterns, cm, nil)
		b.ReportMetric(float64(sum.SimulatedSites), "sim-faults")
	}
	b.ReportMetric(100*cm.Reduction(), "fault-reduction-%")
}

// campaignPatterns profiles a small workload mix once for the campaign
// benchmarks above.
func campaignPatterns(b *testing.B) []units.Pattern {
	b.Helper()
	pats := envInt("GPUFAULTSIM_PATTERNS", 64)
	prof, err := profiler.Collect(
		[]workloads.Workload{workloads.VectorAdd{}, workloads.GEMM{}},
		profiler.Config{Seed: 1, MaxPatterns: pats})
	if err != nil {
		b.Fatal(err)
	}
	return prof.TopPatterns(pats)
}

// --- Core substrate micro-benchmarks -----------------------------------------------

func BenchmarkGPUSimulatorGEMM(b *testing.B) {
	job := workloads.GEMM{}.Build(rand.New(rand.NewSource(1)))
	dev := gpu.NewDevice(gpu.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := job.Run(dev)
		if err != nil || rr.Hung() {
			b.Fatalf("gemm failed: %v %v", err, rr)
		}
		b.ReportMetric(float64(rr.Issues), "issues")
	}
}

func BenchmarkGateLevelEvalWSC(b *testing.B) {
	u := units.WSC()
	p := units.Pattern{WarpValid: 0xFFFF, WarpReady: 0xFFFF, ActiveMask: ^uint32(0)}
	sim := netlist.NewSimulator(u.NL)
	b.ReportMetric(float64(u.NL.NumCells()), "cells")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Drive(sim, p, i%2)
		sim.Step()
	}
}

// --- Extensions ------------------------------------------------------------------

// BenchmarkMitigationCoverage evaluates the paper's Section-6.3
// countermeasure proposal: CFC + smart-scheduling replication.
func BenchmarkMitigationCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dets, err := mitigate.Evaluate(workloads.MxM{}, mitigate.Config{
			Injections: 12, Seed: 1,
			Models: []errmodel.Model{errmodel.IAT, errmodel.IAW, errmodel.WV},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range dets {
			if d.Model == errmodel.IAT {
				b.ReportMetric(100*d.CombinedCoverage(), "iat-coverage-%")
			}
		}
	}
}

// BenchmarkAblationPersistence compares permanent, intermittent and
// transient injections of the same error model (the paper: permanent
// faults are less likely to be masked than transient ones).
func BenchmarkAblationPersistence(b *testing.B) {
	for _, pers := range []errmodel.Persistence{
		errmodel.Permanent, errmodel.Intermittent, errmodel.Transient,
	} {
		b.Run(pers.String(), func(b *testing.B) {
			job := workloads.MxM{}.Build(rand.New(rand.NewSource(1)))
			cfg := gpu.DefaultConfig()
			cfg.GlobalMemWords = job.Footprint() + 64
			dev := gpu.NewDevice(cfg)
			golden, err := job.Run(dev)
			if err != nil || golden.Hung() {
				b.Fatalf("golden: %v %v", err, golden)
			}
			fcfg := cfg
			fcfg.MaxIssues = golden.Issues*8 + 10000
			fdev := gpu.NewDevice(fcfg)
			rng := rand.New(rand.NewSource(2))
			masked := 0
			n := 0
			for i := 0; i < b.N; i++ {
				d := errmodel.Random(errmodel.IOC, rng, 8, 1)
				d.Persistence = pers
				d.TransientAt = uint64(i % 97)
				d.DutyCycle = 8
				fdev.ClearHooks()
				fdev.AddHook(perfi.New(d, rand.New(rand.NewSource(int64(i)))))
				rr, err := job.Run(fdev)
				if err != nil {
					b.Fatal(err)
				}
				if workloads.Classify(golden.Output, rr) == workloads.OutcomeMasked {
					masked++
				}
				n++
			}
			b.ReportMetric(100*float64(masked)/float64(n), "masked-%")
		})
	}
}

// BenchmarkAblationDelayFaults runs the decoder campaign under the delay
// fault model (the paper's suggested extension) next to stuck-at.
func BenchmarkAblationDelayFaults(b *testing.B) {
	pats := envInt("GPUFAULTSIM_PATTERNS", 48)
	prof, err := profiler.Collect(
		[]workloads.Workload{workloads.VectorAdd{}, workloads.GEMM{}},
		profiler.Config{Seed: 1, MaxPatterns: pats})
	if err != nil {
		b.Fatal(err)
	}
	patterns := prof.TopPatterns(pats)
	u := units.Decoder()
	b.Run("stuck-at", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sum := gatesim.Campaign(u, patterns, nil)
			b.ReportMetric(100*sum.Fraction(gatesim.SWError), "sw-error-%")
		}
	})
	b.Run("delay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sum := gatesim.CampaignFaults(u, patterns, netlist.DelayFaultList(u.NL), nil)
			b.ReportMetric(100*sum.Fraction(gatesim.SWError), "sw-error-%")
		}
	})
}

// BenchmarkAblationPPBs sweeps the SM's sub-partition count and reports
// the IAT EPR — architecture sensitivity of the error-descriptor mapping.
func BenchmarkAblationPPBs(b *testing.B) {
	for _, ppbs := range []int{1, 2, 4} {
		b.Run("ppbs="+strconv.Itoa(ppbs), func(b *testing.B) {
			cfg := gpu.DefaultConfig()
			cfg.PPBsPerSM = ppbs
			for i := 0; i < b.N; i++ {
				res, err := perfi.RunApp(workloads.MxM{}, perfi.Config{
					Injections: 16, Seed: 1, Device: cfg,
					Models: []errmodel.Model{errmodel.IAT},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.EPR(errmodel.IAT), "iat-epr-%")
			}
		})
	}
}
