package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpufaultsim/internal/workload"
)

// testSpec is a small all-uniform spec: 12 events over 3 model seconds,
// deterministic counts per class.
const testSpec = `{
  "schema": 1, "seed": 11, "duration_s": 3, "rate_rps": 4,
  "clients": [
    {"name": "ui", "rate_fraction": 0.5, "arrival": "uniform", "slo_class": "interactive",
     "jobs": [{"weight": 1, "max_patterns": 4, "injections": 1, "apps": ["vectoradd"], "profiling": ["vectoradd"]}]},
    {"name": "bulk", "rate_fraction": 0.5, "arrival": "uniform", "slo_class": "background",
     "jobs": [{"weight": 1, "max_patterns": 4, "injections": 1, "apps": ["vectoradd"], "profiling": ["vectoradd"]}]}
  ]
}`

func expandTestSpec(t *testing.T) *workload.Schedule {
	t.Helper()
	spec, err := workload.Parse([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// stubDaemon admits until the admission limit, then answers 429 with
// Retry-After, mimicking faultsimd's bounded pending queue.
type stubDaemon struct {
	limit   int64
	seen    atomic.Int64
	mu      sync.Mutex
	classes map[string]int
	nextID  atomic.Int64
}

func (d *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		if d.classes == nil {
			d.classes = map[string]int{}
		}
		d.classes[r.URL.Query().Get("class")]++
		d.mu.Unlock()
		if d.seen.Add(1) > d.limit {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "pending queue full, retry later", http.StatusTooManyRequests)
			return
		}
		id := fmt.Sprintf("job-%04d", d.nextID.Add(1))
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": id, "state": "queued"})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"id": r.PathValue("id"), "state": "done"})
	})
	return mux
}

// TestReplayAccounting checks the full report against a stub that
// admits exactly 5 of 12: counts, rejection rate, per-class splits and
// latency quantiles all line up.
func TestReplayAccounting(t *testing.T) {
	sched := expandTestSpec(t)
	if len(sched.Events) != 12 {
		t.Fatalf("test spec expanded to %d events, want 12", len(sched.Events))
	}
	stub := &stubDaemon{limit: 5}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	rep, err := Replay(context.Background(), Config{
		Addr: srv.URL, Scale: 0, Wait: true, Timeout: 30 * time.Second,
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 12 || rep.Admitted != 5 || rep.Rejected != 7 || rep.Errors != 0 {
		t.Fatalf("events/admitted/rejected/errors = %d/%d/%d/%d, want 12/5/7/0",
			rep.Events, rep.Admitted, rep.Rejected, rep.Errors)
	}
	if got, want := rep.RejectionRate, 7.0/12.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("rejection_rate = %v, want %v", got, want)
	}
	if rep.Completed != 5 || rep.Failed != 0 {
		t.Fatalf("completed/failed = %d/%d, want 5/0", rep.Completed, rep.Failed)
	}
	if len(rep.AdmittedIDs) != 5 {
		t.Fatalf("admitted IDs: %v", rep.AdmittedIDs)
	}
	if rep.ThroughputRPS <= 0 || rep.WallS <= 0 {
		t.Fatalf("throughput %v over wall %v", rep.ThroughputRPS, rep.WallS)
	}
	if rep.P50S <= 0 || rep.P99S < rep.P50S {
		t.Fatalf("latency p50 %v p99 %v", rep.P50S, rep.P99S)
	}
	// Both classes fired 6 events each; admissions split between them
	// but the totals must add up.
	ia, bg := rep.ByClass["interactive"], rep.ByClass["background"]
	if ia == nil || bg == nil {
		t.Fatalf("by_class keys: %v", rep.ByClass)
	}
	if ia.Events != 6 || bg.Events != 6 {
		t.Fatalf("per-class events = %d/%d, want 6/6", ia.Events, bg.Events)
	}
	if ia.Admitted+bg.Admitted != 5 || ia.Rejected+bg.Rejected != 7 {
		t.Fatalf("per-class admission doesn't sum: %+v %+v", ia, bg)
	}
	if ia.P50S <= 0 || bg.P50S <= 0 {
		t.Fatalf("per-class p50 = %v/%v, want > 0", ia.P50S, bg.P50S)
	}
	// The daemon saw the classes the schedule carried.
	if stub.classes["interactive"] != 6 || stub.classes["background"] != 6 {
		t.Fatalf("daemon saw classes %v", stub.classes)
	}
}

// TestReplayCountsTransportErrors points replay at a dead address: every
// event must surface as an error, not a hang or a panic.
func TestReplayCountsTransportErrors(t *testing.T) {
	sched := expandTestSpec(t)
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // dead on arrival
	rep, err := Replay(context.Background(), Config{
		Addr: srv.URL, Scale: 0, Timeout: 5 * time.Second,
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != len(sched.Events) || rep.Admitted != 0 || rep.Rejected != 0 {
		t.Fatalf("errors = %d, want %d (admitted %d rejected %d)",
			rep.Errors, len(sched.Events), rep.Admitted, rep.Rejected)
	}
}

// TestRunScheduleOutOnly checks the -addr "" path scripts use for
// byte-identity: two expansions of the same spec write identical
// schedule files, and nothing is submitted.
func TestRunScheduleOutOnly(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	s1, s2 := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	for _, out := range []string{s1, s2} {
		if err := run([]string{"-spec", specPath, "-addr", "", "-schedule-out", out}); err != nil {
			t.Fatal(err)
		}
	}
	b1, err := os.ReadFile(s1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("two expansions of one spec wrote different schedule bytes")
	}
	var sched workload.Schedule
	if err := json.Unmarshal(b1, &sched); err != nil {
		t.Fatal(err)
	}
	if sched.Seed != 11 || len(sched.Events) != 12 {
		t.Fatalf("schedule seed %d events %d", sched.Seed, len(sched.Events))
	}
}
