// Command loadgen replays a workload traffic spec against a running
// faultsimd daemon and reports admission and tail-latency statistics.
//
//	loadgen -spec traffic.json -addr http://127.0.0.1:8080 -scale 0.1 -out report.json
//
// The spec expands to a deterministic schedule first (same seed → byte
// identical; -schedule-out writes it for inspection or diffing), then
// the schedule is fired open-loop: each submission goes out at its
// scheduled offset regardless of earlier responses, so the daemon's
// admission queue — not the generator — is the bottleneck under test.
// With -addr "" the expansion is written and nothing is submitted,
// which is how scripts check schedule reproducibility without a daemon.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gpufaultsim/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		specPath = fs.String("spec", "", "traffic spec JSON (required)")
		addr     = fs.String("addr", "http://127.0.0.1:8080", "daemon base URL; empty = expand only, submit nothing")
		scale    = fs.Float64("scale", 1.0, "wall seconds per model second (0 = fire as fast as possible)")
		out      = fs.String("out", "", "report JSON path (empty = stdout)")
		schedOut = fs.String("schedule-out", "", "also write the expanded schedule JSON here")
		wait     = fs.Bool("wait", false, "poll admitted jobs to a terminal state before reporting")
		timeout  = fs.Duration("timeout", 2*time.Minute, "per-request (and with -wait, total polling) timeout")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := workload.Parse(raw)
	if err != nil {
		return err
	}
	sched, err := spec.Expand()
	if err != nil {
		return err
	}
	if *schedOut != "" {
		b, err := workload.EncodeSchedule(sched)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*schedOut, b, 0o644); err != nil {
			return err
		}
	}
	if *addr == "" {
		fmt.Fprintf(os.Stderr, "loadgen: expanded %d events (no -addr, not submitting)\n", len(sched.Events))
		return nil
	}

	rep, err := Replay(context.Background(), Config{
		Addr: *addr, Scale: *scale, Wait: *wait, Timeout: *timeout,
	}, sched)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(*out, b, 0o644)
}
