package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"gpufaultsim/internal/telemetry"
	"gpufaultsim/internal/workload"
)

// ReportSchema versions the loadgen report JSON.
const ReportSchema = 1

// Config drives one replay.
type Config struct {
	// Addr is the daemon base URL, e.g. http://127.0.0.1:8080.
	Addr string
	// Scale maps model time to wall time: wall = model * Scale. 0 fires
	// the whole schedule as fast as possible (maximum admission
	// pressure); 1 replays in real time.
	Scale float64
	// Wait polls every admitted job to a terminal state before the
	// report is cut, so completed/failed counts are exact.
	Wait bool
	// Timeout bounds each HTTP request and, with Wait, each job poll.
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject httptest here).
	Client *http.Client
	// Run names the replay's trace: every submission carries it in the
	// X-Gpufaultsim-Trace header, so the daemon's flight recorder groups
	// the whole load run under one trace ID. Empty derives
	// "loadgen-<seed>" from the schedule.
	Run string
}

// ClassStats is the per-SLO-class slice of the report.
type ClassStats struct {
	Events   int     `json:"events"`
	Admitted int     `json:"admitted"`
	Rejected int     `json:"rejected"`
	Errors   int     `json:"errors"`
	P50S     float64 `json:"latency_p50_s"`
	P99S     float64 `json:"latency_p99_s"`
}

// Report is the replay outcome: admission accounting plus fixed-bucket
// tail-latency estimates over the submission round trips.
type Report struct {
	Schema        int     `json:"schema"`
	Seed          int64   `json:"seed"`
	Events        int     `json:"events"`
	Admitted      int     `json:"admitted"`
	Rejected      int     `json:"rejected"`
	Errors        int     `json:"errors"`
	RejectionRate float64 `json:"rejection_rate"`
	WallS         float64 `json:"wall_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50S          float64 `json:"latency_p50_s"`
	P99S          float64 `json:"latency_p99_s"`

	// Completed/Failed are only populated with -wait: every admitted
	// job polled to a terminal state.
	Completed int `json:"completed,omitempty"`
	Failed    int `json:"failed,omitempty"`

	ByClass map[string]*ClassStats `json:"by_class"`

	// AdmittedIDs lets scripts cross-check the daemon's job table and
	// fetch artifacts for byte-identity comparisons.
	AdmittedIDs []string `json:"admitted_ids"`
}

// submitStatus is the slice of the daemon's job Status replay needs.
type submitStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// Replay fires the schedule at the daemon open-loop: every event is
// submitted at its scheduled offset whether or not earlier submissions
// have returned, which is what makes the admission queue's behavior
// under pressure observable. Latency is recorded into fixed-bucket
// telemetry histograms (one overall, one per SLO class) and the report's
// p50/p99 are their interpolated estimates.
func Replay(ctx context.Context, cfg Config, sched *workload.Schedule) (*Report, error) {
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	// A private registry keeps replay runs independent: two Replay calls
	// in one process (tests) never share buckets.
	reg := telemetry.NewRegistry()
	buckets := telemetry.LatencyBuckets()
	histAll := reg.Histogram("loadgen_submit_seconds",
		"submission round-trip latency", buckets)
	histFor := func(class string) *telemetry.Histogram {
		return reg.Histogram("loadgen_submit_seconds_by_class",
			"submission round-trip latency per SLO class", buckets,
			telemetry.L("class", class))
	}

	run := cfg.Run
	if run == "" {
		run = fmt.Sprintf("loadgen-%d", sched.Seed)
	}

	rep := &Report{Schema: ReportSchema, Seed: sched.Seed, Events: len(sched.Events),
		ByClass: make(map[string]*ClassStats)}
	classOf := func(name string) *ClassStats {
		cs, ok := rep.ByClass[name]
		if !ok {
			cs = &ClassStats{}
			rep.ByClass[name] = cs
		}
		return cs
	}
	// Pre-create class rows (and their histograms) single-threaded so
	// the fire goroutines only ever update.
	for i := range sched.Events {
		classOf(string(sched.Events[i].Class))
		histFor(string(sched.Events[i].Class))
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := range sched.Events {
		ev := &sched.Events[i]
		if cfg.Scale > 0 {
			due := start.Add(time.Duration(float64(ev.AtMs) * cfg.Scale * float64(time.Millisecond)))
			if d := time.Until(due); d > 0 {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(d):
				}
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, outcome := submit(ctx, client, cfg.Addr, run, ev, histAll, histFor(string(ev.Class)))
			mu.Lock()
			defer mu.Unlock()
			cs := classOf(string(ev.Class))
			cs.Events++
			switch outcome {
			case outcomeAdmitted:
				rep.Admitted++
				cs.Admitted++
				rep.AdmittedIDs = append(rep.AdmittedIDs, st.ID)
			case outcomeRejected:
				rep.Rejected++
				cs.Rejected++
			default:
				rep.Errors++
				cs.Errors++
			}
		}()
	}
	wg.Wait()
	rep.WallS = time.Since(start).Seconds()

	if cfg.Wait {
		if err := waitJobs(ctx, client, cfg, rep); err != nil {
			return nil, err
		}
		rep.WallS = time.Since(start).Seconds()
	}

	if rep.Events > 0 {
		rep.RejectionRate = float64(rep.Rejected) / float64(rep.Events)
	}
	if rep.WallS > 0 {
		rep.ThroughputRPS = float64(rep.Admitted) / rep.WallS
	}
	snap := reg.Snapshot()
	all := snap.Histograms["loadgen_submit_seconds"]
	rep.P50S, rep.P99S = all.P50, all.P99
	for name, cs := range rep.ByClass {
		key := fmt.Sprintf("loadgen_submit_seconds_by_class{class=%q}", name)
		h := snap.Histograms[key]
		cs.P50S, cs.P99S = h.P50, h.P99
	}
	return rep, nil
}

type outcome int

const (
	outcomeAdmitted outcome = iota
	outcomeRejected
	outcomeError
)

// submit POSTs one event and classifies the response: 2xx admitted,
// 429 rejected by admission control, anything else an error. The round
// trip is timed into both histograms regardless of outcome — a rejection
// that takes a second is as much an SLO fact as a slow admit.
func submit(ctx context.Context, client *http.Client, addr, run string, ev *workload.Event, hists ...*telemetry.Histogram) (submitStatus, outcome) {
	var st submitStatus
	body, err := json.Marshal(ev.Spec)
	if err != nil {
		return st, outcomeError
	}
	url := addr + "/jobs?class=" + string(ev.Class)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return st, outcomeError
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader,
		telemetry.TraceContext{Trace: run, Origin: "loadgen"}.Encode())
	timer := telemetry.StartTimer(nil)
	resp, err := client.Do(req)
	sec := timer.Stop()
	for _, h := range hists {
		h.Observe(sec)
	}
	if err != nil {
		return st, outcomeError
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return st, outcomeRejected
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if err := json.Unmarshal(b, &st); err != nil || st.ID == "" {
			return st, outcomeError
		}
		return st, outcomeAdmitted
	default:
		return st, outcomeError
	}
}

// waitJobs polls every admitted job to a terminal state.
func waitJobs(ctx context.Context, client *http.Client, cfg Config, rep *Report) error {
	deadline := time.Now().Add(cfg.Timeout)
	if cfg.Timeout <= 0 {
		deadline = time.Now().Add(10 * time.Minute)
	}
	for _, id := range rep.AdmittedIDs {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("loadgen: timed out waiting for job %s", id)
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Addr+"/jobs/"+id, nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("loadgen: poll %s: HTTP %d", id, resp.StatusCode)
			}
			var st submitStatus
			if err := json.Unmarshal(b, &st); err != nil {
				return fmt.Errorf("loadgen: poll %s: %w", id, err)
			}
			done := false
			switch st.State {
			case "done":
				rep.Completed++
				done = true
			case "failed", "canceled":
				rep.Failed++
				done = true
			}
			if done {
				break
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
	return nil
}
