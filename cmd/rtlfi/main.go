// Command rtlfi runs the paper's RTL-level study standalone (Section 4):
// the per-instruction micro-benchmark AVF campaign (Figure 2), the fault
// syndrome analysis per input range (Figures 4-5), and the t-MxM mini-app
// with spatial patterns (Figures 6-8, Table 2).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"gpufaultsim/internal/isa"
	"gpufaultsim/internal/report"
	"gpufaultsim/internal/rtlfi"
	"gpufaultsim/internal/syndrome"
)

// avfJSON is the serializable Figure-2 dataset.
type avfJSON struct {
	Instr        string  `json:"instr"`
	Module       string  `json:"module"`
	Injections   int     `json:"injections"`
	SDCSingle    float64 `json:"sdc_single"`
	SDCMulti     float64 `json:"sdc_multi"`
	DUE          float64 `json:"due"`
	Masked       float64 `json:"masked"`
	AvgCorrupted float64 `json:"avg_corrupted_threads_per_warp"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtlfi: ")
	seed := flag.Int64("seed", 1, "campaign seed")
	values := flag.Int("values", 4, "value sets per input range (paper: 4)")
	lanes := flag.Int("lanes", 4, "hardware lanes sampled per site structure")
	tmxmValues := flag.Int("tmxm-values", 2, "input draws per tile kind")
	tmxmStride := flag.Int("tmxm-stride", 4, "inject every k-th t-MxM site")
	study := flag.String("study", "all", "micro|syndrome|tmxm|all")
	jsonPath := flag.String("json", "", "write the Figure-2 dataset as JSON")
	flag.Parse()

	cfg := rtlfi.MicroConfig{Seed: *seed, ValuesPerRange: *values, LanesSampled: *lanes}

	if *study == "micro" || *study == "all" || *jsonPath != "" {
		rows, _ := rtlfi.Figure2(cfg)
		if *study == "micro" || *study == "all" {
			fmt.Print(report.Fig2(rows))
			fmt.Println()
		}
		if *jsonPath != "" {
			var out []avfJSON
			for _, r := range rows {
				out = append(out, avfJSON{
					Instr: r.Op.String(), Module: r.Module.String(),
					Injections: r.Injections,
					SDCSingle:  r.SDCSingle, SDCMulti: r.SDCMulti,
					DUE: r.DUE, Masked: r.Masked,
					AvgCorrupted: r.AvgCorruptedThreads,
				})
			}
			f, err := os.Create(*jsonPath)
			if err != nil {
				log.Fatal(err)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("artifact: %s\n\n", *jsonPath)
		}
	}

	if *study == "syndrome" || *study == "all" {
		fmt.Println("Figures 4-5 — per-range fault syndromes")
		for _, op := range []isa.Opcode{isa.OpFADD, isa.OpFMUL, isa.OpFFMA,
			isa.OpIADD, isa.OpIMUL, isa.OpIMAD} {
			for _, rg := range rtlfi.Ranges() {
				pairs := rtlfi.MicroSyndrome(op, moduleFor(op), rg, cfg)
				res := rtlfi.RelativeErrors(pairs, op.Unit() == isa.UnitFP32)
				if len(res) == 0 {
					continue
				}
				fmt.Print(report.SyndromeHistogram(
					fmt.Sprintf("%v / FU / range %v", op, rg), syndrome.Build(res)))
				fmt.Printf("  median relative error: %.4g\n", syndrome.Median(res))
			}
		}
		fmt.Println()
	}

	if *study == "tmxm" || *study == "all" {
		st := rtlfi.RunTMxMStudy(rtlfi.TMxMConfig{Seed: *seed,
			ValuesPerTile: *tmxmValues, SiteStride: *tmxmStride})
		fmt.Print(report.Fig6(st.Rows))
		fmt.Println()
		fmt.Print(report.Table2(st))
		fmt.Println()
		fmt.Print(report.Fig8(st))
	}
}

func moduleFor(op isa.Opcode) rtlfi.Module {
	switch op.Unit() {
	case isa.UnitFP32:
		return rtlfi.ModFP32
	case isa.UnitSFU:
		return rtlfi.ModSFU
	default:
		return rtlfi.ModINT
	}
}
