// Command gatefi runs steps 2-3 of the methodology: exhaustive gate-level
// stuck-at fault injection campaigns on the WSC, fetch and decoder units,
// classifying every fault and mapping corruptions to the 13 instruction-
// level error models (paper Tables 4 and 5, Figure 9).
package main

//vetsim:instrumented

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpufaultsim/internal/artifact"

	"gpufaultsim/internal/analyze"
	"gpufaultsim/internal/campaign"
	"gpufaultsim/internal/errclass"
	"gpufaultsim/internal/gatesim"
	"gpufaultsim/internal/profiler"
	"gpufaultsim/internal/report"
	"gpufaultsim/internal/telemetry"
	"gpufaultsim/internal/units"
	"gpufaultsim/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gatefi: ")
	seed := flag.Int64("seed", 1, "campaign seed")
	maxPatterns := flag.Int("patterns", 512, "exciting patterns per unit campaign")
	unitName := flag.String("unit", "all", "unit to inject: wsc, fetch, decoder, all")
	workers := flag.Int("workers", 0, "intra-campaign fault-batch workers per unit campaign (0 = GOMAXPROCS, 1 = serial); selected units additionally run concurrently, so this knob scales a single campaign instead of capping out at the 3 runnable units")
	collapse := flag.Bool("collapse", false, "statically collapse the fault list before simulation (identical results, fewer simulated faults)")
	engineName := flag.String("engine", "event", "simulation engine: event (levelized event-driven) or full (dense re-evaluation); results are byte-identical")
	jsonPath := flag.String("json", "", "also write a JSON artifact per unit to <path>_<unit>.json")
	telemetryPath := flag.String("telemetry", "", "write an end-of-run telemetry report (metrics + spans) to this JSON file")
	flag.Parse()

	eng, err := gatesim.ParseEngine(*engineName)
	if err != nil {
		log.Fatal(err)
	}

	runSpan := telemetry.StartSpan("gatefi")

	profSpan := runSpan.Child("profile")
	prof, err := profiler.Collect(workloads.Profiling(), profiler.Config{
		Seed: *seed, MaxPatterns: *maxPatterns,
	})
	profSpan.End()
	if err != nil {
		log.Fatal(err)
	}
	patterns := prof.TopPatterns(*maxPatterns)
	fmt.Printf("driving %d exciting patterns (from %d dynamic instructions)\n\n",
		len(patterns), prof.DynInstrs)

	var targets []*units.Unit
	for _, u := range units.All() {
		if *unitName == "all" || u.Name == *unitName {
			targets = append(targets, u)
		}
	}
	if len(targets) == 0 {
		log.Fatalf("unknown unit %q", *unitName)
	}

	tm := telemetry.StartTimer(nil)
	type outcome struct {
		sum *gatesim.Summary
		col *errclass.Collector
	}
	// -workers feeds the intra-campaign fault-batch pool; the unit fan-out
	// always runs every selected unit concurrently (at most 3).
	cfg := gatesim.Config{Engine: eng, Workers: *workers}
	outs := campaign.ParallelMap(targets, 0, func(u *units.Unit) outcome {
		sp := runSpan.Child("gate:" + u.Name)
		defer sp.End()
		col := errclass.NewCollector(u.Name)
		var sum *gatesim.Summary
		if *collapse {
			cm := analyze.Collapse(u.NL)
			sum = gatesim.CampaignCollapsedCfg(u, patterns, cm, col, cfg)
		} else {
			sum = gatesim.CampaignCfg(u, patterns, col, cfg)
		}
		return outcome{sum, col}
	})
	fmt.Printf("campaigns finished in %.2fs\n\n", tm.Stop())

	var sums []*gatesim.Summary
	var reports []*errclass.UnitReport
	cols := map[string]*errclass.Collector{}
	totals := map[string]int{}
	for i, u := range targets {
		fmt.Println(u.NL.Stats())
		sums = append(sums, outs[i].sum)
		reports = append(reports, errclass.Report(outs[i].sum, outs[i].col))
		cols[u.Name] = outs[i].col
		totals[u.Name] = u.NL.NumFaults()
		fmt.Printf("  multi-model faults: %d\n", outs[i].col.MultiModelFaults())
		if s := outs[i].sum; s.SimulatedSites < s.TotalSites {
			fmt.Printf("  collapsed: simulated %d of %d fault sites (%.1f%% fewer)\n",
				s.SimulatedSites, s.TotalSites,
				100*(1-float64(s.SimulatedSites)/float64(s.TotalSites)))
		}
		if *jsonPath != "" {
			path := fmt.Sprintf("%s_%s.json", *jsonPath, u.Name)
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := artifact.Write(f, artifact.NewGateReport(*seed, outs[i].sum, outs[i].col)); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("  artifact: %s\n", path)
		}
	}
	fmt.Println()
	fmt.Print(report.Table4(sums))
	fmt.Println()
	fmt.Print(report.Table5(reports))
	fmt.Println()
	fmt.Print(report.Fig9(cols, totals))

	runSpan.End()
	if *telemetryPath != "" {
		if err := telemetry.WriteReportFile(*telemetryPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntelemetry report: %s\n", *telemetryPath)
	}
}
