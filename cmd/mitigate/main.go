// Command mitigate evaluates the paper's proposed countermeasures
// (Section 6.3): software control-flow checking and smart-scheduling
// replication, reporting per-error-model detection coverage over the SDCs
// each application suffers.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"gpufaultsim/internal/cnn"
	"gpufaultsim/internal/errmodel"
	"gpufaultsim/internal/mitigate"
	"gpufaultsim/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mitigate: ")
	seed := flag.Int64("seed", 1, "campaign seed")
	injections := flag.Int("injections", 50, "injections per app per error model")
	appsFlag := flag.String("apps", "vectoradd,mxm,gemm", "comma-separated app names")
	flag.Parse()

	byName := map[string]workloads.Workload{}
	for _, w := range cnn.Evaluation15() {
		byName[w.Name()] = w
	}
	for _, name := range strings.Split(*appsFlag, ",") {
		w, ok := byName[strings.TrimSpace(name)]
		if !ok {
			log.Fatalf("unknown app %q", name)
		}
		dets, err := mitigate.Evaluate(w, mitigate.Config{
			Injections: *injections, Seed: *seed,
			Models: errmodel.Injectable(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(mitigate.Render(w.Name(), dets))
	}
	fmt.Println("CFC = control-flow signature checking; DWC = replication on")
	fmt.Println("displaced warp slots (the paper's smart-scheduling proposal)")
}
