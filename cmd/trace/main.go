// Command trace records golden and faulty instruction traces for one
// workload under one error descriptor and prints the first control-flow
// divergence plus mask-drift statistics — a propagation microscope for
// studying how a permanent error unfolds.
//
//	trace -app gemm -model IAT -warp 0 -lanes 0x3 -mask 0x2
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"gpufaultsim/internal/cnn"
	"gpufaultsim/internal/errmodel"
	"gpufaultsim/internal/gpu"
	"gpufaultsim/internal/perfi"
	"gpufaultsim/internal/trace"
	"gpufaultsim/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trace: ")
	app := flag.String("app", "vectoradd", "workload name (Table 1)")
	model := flag.String("model", "IAT", "error model to inject")
	warp := flag.Int("warp", 0, "target warp slot")
	lanes := flag.Uint64("lanes", 0xFFFFFFFF, "target lane mask")
	mask := flag.Uint64("mask", 1, "bitErrMask")
	loc := flag.Int("loc", 0, "errOperLoc")
	seed := flag.Int64("seed", 1, "workload seed")
	context := flag.Int("context", 4, "trace context lines around the divergence")
	flag.Parse()

	var w workloads.Workload
	for _, cand := range cnn.Evaluation15() {
		if cand.Name() == *app {
			w = cand
		}
	}
	if w == nil {
		if w = workloads.ByName(*app); w == nil {
			log.Fatalf("unknown app %q", *app)
		}
	}
	m, err := errmodel.ParseModel(*model)
	if err != nil {
		log.Fatal(err)
	}
	desc := errmodel.Descriptor{
		Model: m, Warps: []int{*warp}, Threads: uint32(*lanes),
		BitErrMask: uint32(*mask), ErrOperLoc: *loc,
	}

	job := w.Build(rand.New(rand.NewSource(*seed)))
	cfg := gpu.DefaultConfig()
	cfg.GlobalMemWords = job.Footprint() + 64

	run := func(hook gpu.Hook) ([]trace.Event, *workloads.RunResult) {
		dev := gpu.NewDevice(cfg)
		rec := &trace.Recorder{}
		if hook != nil {
			dev.AddHook(hook)
		}
		dev.AddHook(rec)
		rr, err := job.Run(dev)
		if err != nil {
			log.Fatal(err)
		}
		return rec.Events, rr
	}

	golden, grr := run(nil)
	if grr.Hung() {
		log.Fatalf("golden run trapped: %v", grr.Trap)
	}
	faulty, frr := run(perfi.New(desc, rand.New(rand.NewSource(*seed))))

	fmt.Printf("app=%s descriptor: %v\n", w.Name(), desc)
	fmt.Printf("outcome: %v", workloads.Classify(grr.Output, frr))
	if frr.Hung() {
		fmt.Printf(" (%v: %s)", frr.Trap, frr.TrapInfo)
	}
	fmt.Println()

	d := trace.Diff(golden, faulty)
	fmt.Print(trace.Render(d, golden, faulty, *context))
	compared, maskDiffs, flips := trace.MaskDriftStats(golden, faulty)
	fmt.Printf("mask drift: %d/%d issues differ, %d lane flips total\n",
		maskDiffs, compared, flips)
	if d.Diverged() {
		fmt.Println("(control flow diverged: a CFC-style detector would flag this run)")
	} else if workloads.Classify(grr.Output, frr) == workloads.OutcomeSDC {
		fmt.Println("(pure data corruption: invisible to control-flow checking)")
	}
}
