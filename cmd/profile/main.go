// Command profile runs step 1 of the methodology: hardware unit profiling
// over the representative workloads, printing the exciting-pattern
// statistics and the area/utilization table (paper Table 3).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpufaultsim/internal/isa"
	"gpufaultsim/internal/profiler"
	"gpufaultsim/internal/report"
	"gpufaultsim/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("profile: ")
	seed := flag.Int64("seed", 1, "campaign seed")
	maxPatterns := flag.Int("max-patterns", 4096, "cap on deduplicated exciting patterns")
	flag.Parse()

	prof, err := profiler.Collect(workloads.Profiling(), profiler.Config{
		Seed: *seed, MaxPatterns: *maxPatterns,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("profiled %d dynamic warp-instructions from %d workloads\n",
		prof.DynInstrs, len(prof.PerWorkload))
	fmt.Printf("deduplicated exciting patterns: %d (%.1fx compression)\n",
		len(prof.Patterns), float64(prof.DynInstrs)/float64(len(prof.Patterns)))
	for _, w := range workloads.Profiling() {
		fmt.Printf("  %-12s %8d dynamic instructions\n", w.Name(), prof.PerWorkload[w.Name()])
	}
	fmt.Println()
	for u := isa.UnitNone; u <= isa.UnitCTRL; u++ {
		fmt.Printf("  %-5v utilization %5.1f%%\n", u, 100*prof.Utilization(u))
	}
	fmt.Println()
	fmt.Print(report.Table3(prof))
	os.Exit(0)
}
