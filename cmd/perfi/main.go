// Command perfi runs steps 4-5 of the methodology: software-level
// permanent-error injection (the NVBitPERfi analog) over the evaluation
// applications, reporting per-application and average Error Propagation
// Rates (paper Figures 10 and 11).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gpufaultsim/internal/artifact"

	"gpufaultsim/internal/campaign"
	"gpufaultsim/internal/cnn"
	"gpufaultsim/internal/errmodel"
	"gpufaultsim/internal/perfi"
	"gpufaultsim/internal/report"
	"gpufaultsim/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfi: ")
	seed := flag.Int64("seed", 1, "campaign seed")
	injections := flag.Int("injections", 100, "injections per app per error model (paper: 1000)")
	appsFlag := flag.String("apps", "all", "comma-separated app names, or 'all' (Table 1's 15)")
	modelsFlag := flag.String("models", "", "comma-separated error models (default: the 11 injectable)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "also write a JSON artifact to this path")
	flag.Parse()

	var apps []workloads.Workload
	if *appsFlag == "all" {
		apps = cnn.Evaluation15()
	} else {
		all := cnn.Evaluation15()
		byName := map[string]workloads.Workload{}
		for _, w := range all {
			byName[w.Name()] = w
		}
		for _, name := range strings.Split(*appsFlag, ",") {
			w, ok := byName[strings.TrimSpace(name)]
			if !ok {
				log.Fatalf("unknown app %q", name)
			}
			apps = append(apps, w)
		}
	}

	models := errmodel.Injectable()
	if *modelsFlag != "" {
		models = nil
		for _, name := range strings.Split(*modelsFlag, ",") {
			m, err := errmodel.ParseModel(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			models = append(models, m)
		}
	}

	cfg := perfi.Config{Injections: *injections, Seed: *seed, Models: models}
	fmt.Printf("injecting %d errors x %d models x %d applications\n",
		*injections, len(models), len(apps))
	start := time.Now()
	results, err := campaign.RunSuiteParallel(apps, cfg, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign finished in %.2fs\n\n", time.Since(start).Seconds())

	fmt.Print(report.Fig10(results, models))
	fmt.Println()
	fmt.Print(report.Fig11(perfi.Average(results), models))

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := artifact.Write(f, artifact.NewSoftwareReport(*seed, *injections, results)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nartifact: %s\n", *jsonPath)
	}
}
