package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpufaultsim/internal/cluster"
	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/report"
	"gpufaultsim/internal/store"
)

// TestDrainRejectsNewWorkButFinishesInFlight is the graceful-drain
// contract end to end, on a coordinator-role daemon with a live cluster
// worker: once Drain begins, /readyz fails (load balancers steer away)
// and POST /jobs answers 429 with Retry-After, but jobs admitted before
// the drain — including their NDJSON progress streams — run to
// completion, and the lease ledger settles with nothing pending or
// leased.
func TestDrainRejectsNewWorkButFinishesInFlight(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir+"/cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	ledger := jobs.NewLedger(jobs.LedgerOptions{TTL: 5 * time.Second})
	sched, err := jobs.New(jobs.Options{
		Dir: dir + "/jobs", Store: st, JobWorkers: 1, ChunkWorkers: 2, Ledger: ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorOptions{Ledger: ledger, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched.Start(ctx)
	coord.Start(ctx)
	defer coord.Stop()

	srv := httptest.NewServer(newServer(serverDeps{sched: sched, store: st, coord: coord}))
	defer srv.Close()

	wst, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wk, err := cluster.NewWorker(cluster.WorkerOptions{
		Name: "w1", Coordinator: srv.URL, Store: wst,
		BatchWorkers: 1, MaxLeases: 4, Poll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wkDone := make(chan struct{})
	go func() { defer close(wkDone); wk.Run(ctx) }()
	defer func() { wk.Stop(); <-wkDone }()

	// Two jobs: with one job worker the second queues behind the first,
	// so the drain has both a running and a queued job to finish.
	stA := submitJob(t, srv.URL, tinySpecJSON)
	stB := submitJob(t, srv.URL, `{"seed":8,"max_patterns":16,"injections":2,`+
		`"apps":["vectoradd"],"profiling":["vectoradd","gemm"]}`)

	// Open job A's NDJSON stream before the drain; it must survive it.
	streamResp, err := http.Get(srv.URL + "/jobs/" + stA.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	streamFinal := make(chan report.ProgressSnapshot, 1)
	go func() {
		var last report.ProgressSnapshot
		sc := bufio.NewScanner(streamResp.Body)
		for sc.Scan() {
			json.Unmarshal(sc.Bytes(), &last)
		}
		streamFinal <- last
	}()

	// Let the first job actually start before draining.
	deadline := time.Now().Add(60 * time.Second)
	for getJob(t, srv.URL, stA.ID).State == jobs.StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	drained := make(chan bool, 1)
	go func() { drained <- sched.Drain(120 * time.Second) }()
	for !sched.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never began")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Mid-drain: not ready, with a reason naming the drain.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status  string            `json:"status"`
		Reasons map[string]string `json:"reasons"`
	}
	json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz mid-drain = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(ready.Reasons["scheduler"], "draining") {
		t.Fatalf("readyz reasons mid-drain = %v, want a draining scheduler entry", ready.Reasons)
	}

	// Mid-drain: new submissions bounce with 429 + Retry-After, and the
	// rejection leaves no job behind.
	jobsBefore := len(sched.Jobs())
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(tinySpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]string
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit mid-drain = %d, want 429 (%v)", resp.StatusCode, e)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if got := len(sched.Jobs()); got != jobsBefore {
		t.Fatalf("rejected submission created a job: %d -> %d", jobsBefore, got)
	}

	if ok := <-drained; !ok {
		t.Fatal("drain did not complete within grace")
	}

	// Both pre-drain jobs finished, and the stream saw job A through to
	// its terminal state.
	for _, id := range []string{stA.ID, stB.ID} {
		if got := getJob(t, srv.URL, id); got.State != jobs.StateDone {
			t.Fatalf("job %s = %s after drain, want done (%s)", id, got.State, got.Err)
		}
	}
	final := <-streamFinal
	if final.State != string(jobs.StateDone) || final.ChunksDone != final.ChunksTotal {
		t.Fatalf("stream final snapshot %+v, want completed job", final)
	}

	// The ledger settled: every offered chunk resolved, nothing pending
	// or still leased.
	ls := ledger.Stats()
	if ls.Pending != 0 || ls.Leased != 0 {
		t.Fatalf("ledger not settled after drain: %+v", ls)
	}
	if ls.Done == 0 {
		t.Fatalf("ledger saw no completed chunks: %+v", ls)
	}
}
