package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"gpufaultsim/internal/telemetry"
)

// promLineRE accepts comments and well-formed sample lines of the
// Prometheus text exposition format (0.0.4).
var promLineRE = regexp.MustCompile(`^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+Inf|-Inf|NaN|[0-9.eE+-]+))$`)

func TestMetricsFormats(t *testing.T) {
	_, srv, _ := newTestDaemon(t, t.TempDir())
	st := submitJob(t, srv.URL, tinySpecJSON)
	waitDone(t, srv.URL, st.ID)

	// JSON (default) carries the registry snapshot alongside the flat
	// scheduler view.
	m := fetchMetrics(t, srv.URL)
	for _, name := range []string{
		"jobs_submitted_total",
		"jobs_chunks_total{source=\"computed\"}",
		"store_puts_total",
		"campaign_tasks_total",
		"gatesim_patterns_simulated_total",
	} {
		if m.Registry.Counters[name] <= 0 {
			t.Errorf("registry counter %s = %d, want > 0 (have %v)",
				name, m.Registry.Counters[name], m.Registry.Counters)
		}
	}
	if h, ok := m.Registry.Histograms["jobs_chunk_seconds"]; !ok || h.Count == 0 {
		t.Errorf("jobs_chunk_seconds histogram missing or empty: %+v", h)
	}

	// Prometheus exposition: every line must match the text format, and
	// the instrumented packages' families must be present with TYPE lines.
	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prometheus content type %q", ct)
	}
	text := string(body)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !promLineRE.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE jobs_chunk_seconds histogram",
		"# TYPE store_puts_total counter",
		"# TYPE jobs_queue_depth gauge",
		"jobs_chunk_seconds_bucket{le=\"+Inf\"}",
		"gatesim_faults_classified_total{class=",
		"campaign_workers_busy",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Unknown formats are rejected.
	resp, err = http.Get(srv.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml: status %d, want 400", resp.StatusCode)
	}
}

// TestTraceExportsJobSpanTree is the flight-recorder acceptance check: a
// completed job must leave a span tree (job root -> per-phase/per-chunk
// children) retrievable from /debug/trace in both formats.
func TestTraceExportsJobSpanTree(t *testing.T) {
	telemetry.DefaultRecorder().Reset()
	_, srv, _ := newTestDaemon(t, t.TempDir())
	st := submitJob(t, srv.URL, tinySpecJSON)
	waitDone(t, srv.URL, st.ID)

	// NDJSON: reconstruct the tree and check parent links.
	resp, err := http.Get(srv.URL + "/debug/trace?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	spans := map[string]telemetry.SpanRecord{} // name -> record (names unique here)
	byID := map[uint64]telemetry.SpanRecord{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec telemetry.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		spans[rec.Name] = rec
		byID[rec.ID] = rec
	}
	root, ok := spans["job:"+st.ID]
	if !ok {
		t.Fatalf("no job root span; got %d spans", len(spans))
	}
	if root.Parent != 0 {
		t.Fatalf("job root has parent %d", root.Parent)
	}
	for _, child := range []string{"profile", "gate:wsc", "gate:fetch", "gate:decoder", "sw:vectoradd"} {
		rec, ok := spans[child]
		if !ok {
			t.Fatalf("missing child span %q (have %d spans)", child, len(spans))
		}
		if rec.Parent != root.ID {
			t.Errorf("span %q parent = %d, want job root %d", child, rec.Parent, root.ID)
		}
		if rec.DurUS < 0 {
			t.Errorf("span %q negative duration %d", child, rec.DurUS)
		}
	}

	// Chrome trace JSON: valid JSON with complete events for those spans.
	resp, err = http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var trace struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Phase != "X" {
			t.Errorf("event %q has ph %q, want X", ev.Name, ev.Phase)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"job:" + st.ID, "profile", "gate:wsc"} {
		if !names[want] {
			t.Errorf("trace missing event %q", want)
		}
	}

	// Bad format is rejected.
	resp, err = http.Get(srv.URL + "/debug/trace?format=pb")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=pb: status %d, want 400", resp.StatusCode)
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	sched, srv, _ := newTestDaemon(t, t.TempDir())

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(newServer(serverDeps{sched: sched, enablePprof: true}))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: status %d, want 200", resp.StatusCode)
	}
}
