package main

import (
	"encoding/json"
	"net/http"
	"strings"

	"gpufaultsim/internal/jobs"
)

// metrics is the /metrics payload: everything an operator needs to judge
// cache effectiveness and daemon load at a glance.
type metrics struct {
	Jobs         int                `json:"jobs"`
	QueueDepth   int                `json:"queue_depth"`
	Pending      int                `json:"pending"`
	CacheEntries int                `json:"cache_entries"`
	CacheBytes   int64              `json:"cache_bytes"`
	CacheBudget  int64              `json:"cache_budget"`
	CacheHits    int64              `json:"cache_hits"`
	CacheMisses  int64              `json:"cache_misses"`
	CachePuts    int64              `json:"cache_puts"`
	Evictions    int64              `json:"cache_evictions"`
	CacheHitRate float64            `json:"cache_hit_rate"`
	PhaseSec     map[string]float64 `json:"phase_seconds"`
}

// newServer wires the scheduler into an http.Handler. Split from main so
// tests can drive the full API through httptest without a listener.
func newServer(s *jobs.Scheduler) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec jobs.Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad spec: "+err.Error())
			return
		}
		st, err := s.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			if strings.Contains(err.Error(), "draining") || strings.Contains(err.Error(), "queue full") {
				code = http.StatusServiceUnavailable
			}
			httpError(w, code, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /jobs/{id}/artifacts/{name}", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.Artifact(r.PathValue("id"), r.PathValue("name"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such artifact (job unfinished or name unknown)")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})

	// NDJSON progress stream: one snapshot per line, starting with the
	// current state, closing when the job reaches a terminal state.
	mux.HandleFunc("GET /jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		ch, snap, ok := s.Subscribe(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		enc.Encode(snap)
		if flusher != nil {
			flusher.Flush()
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case ev, open := <-ch:
				if !open {
					return
				}
				enc.Encode(ev)
				if flusher != nil {
					flusher.Flush()
				}
			}
		}
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		cs := s.CacheStats()
		phases := map[string]float64{}
		for ph, sec := range s.PhaseTimings() {
			phases[string(ph)] = sec
		}
		writeJSON(w, http.StatusOK, metrics{
			Jobs:         len(s.Jobs()),
			QueueDepth:   s.QueueDepth(),
			Pending:      s.Pending(),
			CacheEntries: cs.Entries,
			CacheBytes:   cs.Bytes,
			CacheBudget:  cs.Budget,
			CacheHits:    cs.Hits,
			CacheMisses:  cs.Misses,
			CachePuts:    cs.Puts,
			Evictions:    cs.Evictions,
			CacheHitRate: cs.HitRate(),
			PhaseSec:     phases,
		})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
