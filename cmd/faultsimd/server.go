package main

//vetsim:instrumented

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"

	"gpufaultsim/internal/cluster"
	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
	"gpufaultsim/internal/telemetry"
)

// telSubmitSeconds times the POST /jobs round trip server-side — decode,
// admission, checkpoint — into the shared latency bucketing, so the
// daemon's own view of submission latency is comparable with loadgen's
// client-side histograms on /metrics.
var telSubmitSeconds = telemetry.Default().Histogram(
	"http_submit_seconds", "POST /jobs handling latency",
	telemetry.LatencyBuckets())

// metrics is the /metrics JSON payload: the scheduler-scoped view an
// operator needs to judge cache effectiveness and daemon load at a
// glance, plus the process-wide telemetry registry snapshot (counters,
// gauges, histograms from every instrumented package).
type metrics struct {
	Jobs         int                `json:"jobs"`
	QueueDepth   int                `json:"queue_depth"`
	Pending      int                `json:"pending"`
	CacheEntries int                `json:"cache_entries"`
	CacheBytes   int64              `json:"cache_bytes"`
	CacheBudget  int64              `json:"cache_budget"`
	CacheHits    int64              `json:"cache_hits"`
	CacheMisses  int64              `json:"cache_misses"`
	CachePuts    int64              `json:"cache_puts"`
	Evictions    int64              `json:"cache_evictions"`
	CacheHitRate float64            `json:"cache_hit_rate"`
	PhaseSec     map[string]float64 `json:"phase_seconds"`
	Registry     telemetry.Snapshot `json:"registry"`
}

// serverDeps are the components newServer wires together. store backs
// the /readyz writability probe; coord, when non-nil (coordinator role),
// mounts the cluster lease protocol on the same surface.
type serverDeps struct {
	sched       *jobs.Scheduler
	store       *store.Store
	coord       *cluster.Coordinator
	enablePprof bool
}

// newServer wires the scheduler into an http.Handler. Split from main so
// tests can drive the full API through httptest without a listener.
func newServer(deps serverDeps) http.Handler {
	s := deps.sched
	mux := http.NewServeMux()

	// Liveness: the process is up and serving. Always 200.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	// Readiness: the daemon can actually take work — the scheduler's
	// worker pool is running (a job accepted before Start would queue
	// indefinitely), it is not draining (a drain rejects every submission
	// while in-flight work finishes, so a balancer must stop routing
	// here), and the result store accepts writes (a read-only or full
	// volume would fail every campaign mid-chunk).
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		reasons := make(map[string]string)
		if !s.Started() {
			reasons["scheduler"] = "worker pool not started"
		}
		if s.Draining() {
			reasons["scheduler"] = "draining: completing in-flight jobs, rejecting new ones"
		}
		if deps.store != nil {
			if err := deps.store.Writable(); err != nil {
				reasons["store"] = err.Error()
			}
		}
		if len(reasons) > 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "unavailable", "reasons": reasons})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})

	if deps.coord != nil {
		deps.coord.Register(mux)
	}

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		timer := telemetry.StartTimer(telSubmitSeconds)
		defer timer.Stop()
		var spec jobs.Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad spec: "+err.Error())
			return
		}
		// SLO class rides the query string, not the spec body: it steers
		// scheduling priority only and must stay out of spec digests and
		// cache keys, so equal specs submitted under different classes
		// still share results.
		class, err := jobs.ParseClass(r.URL.Query().Get("class"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		// A client-propagated trace context (loadgen stamps one per
		// submission) links the client's run trace to the job: the
		// submit point span parents under the client's span, and its
		// job attribute names the job trace the scheduler opens.
		tc := telemetry.ParseTraceContext(r.Header.Get(telemetry.TraceHeader))
		st, err := s.SubmitWith(spec, jobs.SubmitOptions{Class: class})
		if err != nil {
			// Admission pushback is a retryable client condition, not a
			// server fault: 429 with Retry-After tells a well-behaved
			// load source to back off while in-flight work drains.
			if errors.Is(err, jobs.ErrQueueFull) || errors.Is(err, jobs.ErrDraining) {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, err.Error())
				return
			}
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if !tc.IsZero() {
			sp := telemetry.DefaultRecorder().StartSpanContext("submit:"+st.ID, tc)
			sp.SetAttr("job", st.ID)
			sp.End()
		}
		writeJSON(w, http.StatusAccepted, st)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /jobs/{id}/artifacts/{name}", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.Artifact(r.PathValue("id"), r.PathValue("name"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such artifact (job unfinished or name unknown)")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})

	// NDJSON progress stream: one snapshot per line, starting with the
	// current state, closing when the job reaches a terminal state.
	mux.HandleFunc("GET /jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		ch, snap, ok := s.Subscribe(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		enc.Encode(snap)
		if flusher != nil {
			flusher.Flush()
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case ev, open := <-ch:
				if !open {
					return
				}
				enc.Encode(ev)
				if flusher != nil {
					flusher.Flush()
				}
			}
		}
	})

	// /metrics serves the scheduler view plus the registry snapshot as
	// JSON (default), or the full registry in Prometheus text exposition
	// format with ?format=prometheus. The scheduler fields come from one
	// consistent MetricsSnapshot pass rather than field-by-field getters,
	// so a scrape never sees a queue depth from before a job transition
	// paired with phase timings from after it.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "", "json":
			v := s.MetricsSnapshot()
			phases := make(map[string]float64, len(v.PhaseSec))
			for ph, sec := range v.PhaseSec {
				phases[string(ph)] = sec
			}
			writeJSON(w, http.StatusOK, metrics{
				Jobs:         v.Jobs,
				QueueDepth:   v.QueueDepth,
				Pending:      v.Pending,
				CacheEntries: v.Cache.Entries,
				CacheBytes:   v.Cache.Bytes,
				CacheBudget:  v.Cache.Budget,
				CacheHits:    v.Cache.Hits,
				CacheMisses:  v.Cache.Misses,
				CachePuts:    v.Cache.Puts,
				Evictions:    v.Cache.Evictions,
				CacheHitRate: v.Cache.HitRate(),
				PhaseSec:     phases,
				Registry:     telemetry.Default().Snapshot(),
			})
		case "prometheus":
			s.MetricsSnapshot() // refresh queue-depth/pending gauges
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			telemetry.Default().WritePrometheus(w)
		default:
			httpError(w, http.StatusBadRequest, "unknown format (want json or prometheus)")
		}
	})

	// /debug/trace exports the flight recorder: Chrome trace_event JSON
	// by default (load in chrome://tracing or Perfetto), one span per
	// line with ?format=ndjson.
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		rec := telemetry.DefaultRecorder()
		switch r.URL.Query().Get("format") {
		case "", "trace":
			w.Header().Set("Content-Type", "application/json")
			rec.WriteTrace(w)
		case "ndjson":
			w.Header().Set("Content-Type", "application/x-ndjson")
			rec.WriteNDJSON(w)
		default:
			httpError(w, http.StatusBadRequest, "unknown format (want trace or ndjson)")
		}
	})

	if deps.enablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	return mux
}

// newWorkerServer is the worker role's minimal surface: liveness,
// readiness (joined to the coordinator + local store writable) and the
// process telemetry registry. Workers take no job submissions — chunks
// arrive by leasing from the coordinator.
func newWorkerServer(wk *cluster.Worker, st *store.Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		reasons := make(map[string]string)
		if !wk.Connected() {
			reasons["coordinator"] = "no successful lease exchange yet"
		}
		if err := st.Writable(); err != nil {
			reasons["store"] = err.Error()
		}
		if len(reasons) > 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "unavailable", "reasons": reasons})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "", "json":
			writeJSON(w, http.StatusOK, map[string]any{"registry": telemetry.Default().Snapshot()})
		case "prometheus":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			telemetry.Default().WritePrometheus(w)
		default:
			httpError(w, http.StatusBadRequest, "unknown format (want json or prometheus)")
		}
	})
	// The worker's own copy of every chunk trace subtree — the same
	// spans it ships to the coordinator for stitching.
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		rec := wk.Recorder()
		switch r.URL.Query().Get("format") {
		case "", "trace":
			w.Header().Set("Content-Type", "application/json")
			rec.WriteTrace(w)
		case "ndjson":
			w.Header().Set("Content-Type", "application/x-ndjson")
			rec.WriteNDJSON(w)
		default:
			httpError(w, http.StatusBadRequest, "unknown format (want trace or ndjson)")
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
