package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gpufaultsim/internal/cluster"
	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
)

func TestHealthzAlwaysOK(t *testing.T) {
	_, srv, _ := newTestDaemon(t, t.TempDir())
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}

func TestReadyzReflectsSchedulerStart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir+"/cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := jobs.New(jobs.Options{Dir: dir + "/jobs", Store: st, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(serverDeps{sched: sched, store: st}))
	defer srv.Close()

	// Not started yet: not ready, with a reason naming the scheduler.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status  string            `json:"status"`
		Reasons map[string]string `json:"reasons"`
	}
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Start = %d, want 503", resp.StatusCode)
	}
	if _, ok := body.Reasons["scheduler"]; !ok {
		t.Fatalf("readyz reasons = %v, want scheduler entry", body.Reasons)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched.Start(ctx)
	defer sched.Stop()

	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after Start = %d, want 200", resp.StatusCode)
	}
}

// TestCoordinatorRoleMountsClusterRoutes drives the daemon handler the
// way -role coordinator wires it: the job API and the cluster lease
// protocol share one mux, and a worker pointed at it completes a
// campaign end to end.
func TestCoordinatorRoleMountsClusterRoutes(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir+"/cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	ledger := jobs.NewLedger(jobs.LedgerOptions{TTL: 5 * time.Second})
	sched, err := jobs.New(jobs.Options{
		Dir: dir + "/jobs", Store: st, JobWorkers: 1, ChunkWorkers: 2, Ledger: ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorOptions{Ledger: ledger, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched.Start(ctx)
	defer sched.Stop()
	coord.Start(ctx)
	defer coord.Stop()

	srv := httptest.NewServer(newServer(serverDeps{sched: sched, store: st, coord: coord}))
	defer srv.Close()

	// The cluster view is mounted alongside the job API.
	resp, err := http.Get(srv.URL + "/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cluster/workers = %d, want 200", resp.StatusCode)
	}

	wst, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wk, err := cluster.NewWorker(cluster.WorkerOptions{
		Name: "w1", Coordinator: srv.URL, Store: wst,
		BatchWorkers: 1, MaxLeases: 4, Poll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); wk.Run(ctx) }()
	defer func() { wk.Stop(); <-done }()

	status := submitJob(t, srv.URL, tinySpecJSON)
	waitJobState(t, srv.URL, status.ID, "done", 120*time.Second)
}

func TestWorkerServerReadiness(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wk, err := cluster.NewWorker(cluster.WorkerOptions{
		Name: "w1", Coordinator: "http://127.0.0.1:0", Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newWorkerServer(wk, st))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker healthz = %d, want 200", resp.StatusCode)
	}
	// Never exchanged a lease with the coordinator: not ready.
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("worker readyz unjoined = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker metrics = %d, want 200", resp.StatusCode)
	}
}

// waitJobState polls the HTTP job API until the job reaches want.
func waitJobState(t *testing.T, base, id, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobs.Status
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if string(st.State) == want {
			return
		}
		if st.State == jobs.StateFailed && want != "failed" {
			t.Fatalf("job %s failed: %s", id, st.Err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}
