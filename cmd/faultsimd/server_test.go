package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/report"
	"gpufaultsim/internal/store"
)

const tinySpecJSON = `{"seed":7,"max_patterns":16,"injections":2,` +
	`"apps":["vectoradd"],"profiling":["vectoradd","gemm"]}`

func newTestDaemon(t *testing.T, dir string) (*jobs.Scheduler, *httptest.Server, context.CancelFunc) {
	t.Helper()
	st, err := store.Open(dir+"/cache", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := jobs.New(jobs.Options{
		Dir: dir + "/jobs", Store: st, JobWorkers: 1, ChunkWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sched.Start(ctx)
	srv := httptest.NewServer(newServer(serverDeps{sched: sched, store: st}))
	t.Cleanup(srv.Close)
	t.Cleanup(cancel)
	return sched, srv, cancel
}

func submitJob(t *testing.T, base string, body string) jobs.Status {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %v", resp.StatusCode, e)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJob(t *testing.T, base, id string) jobs.Status {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, base, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getJob(t, base, id)
		switch st.State {
		case jobs.StateDone:
			return st
		case jobs.StateFailed:
			t.Fatalf("job %s failed: %s", id, st.Err)
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobs.Status{}
}

func fetchArtifact(t *testing.T, base, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s: status %d", name, resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes()
}

func fetchMetrics(t *testing.T, base string) metrics {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSubmitAndFetchArtifacts(t *testing.T) {
	_, srv, _ := newTestDaemon(t, t.TempDir())
	st := submitJob(t, srv.URL, tinySpecJSON)
	final := waitDone(t, srv.URL, st.ID)

	if len(final.Artifacts) != 4 {
		t.Fatalf("artifacts = %v", final.Artifacts)
	}
	for _, name := range final.Artifacts {
		if b := fetchArtifact(t, srv.URL, st.ID, name); len(b) == 0 {
			t.Fatalf("artifact %s empty", name)
		}
	}

	// List includes the job; unknown IDs 404.
	resp, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []jobs.Status
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("job list = %+v", list)
	}
	resp, err = http.Get(srv.URL + "/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d", resp.StatusCode)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, srv, _ := newTestDaemon(t, t.TempDir())
	for _, body := range []string{
		`{"seed":1,"apps":["no-such-app"]}`,
		`{"seed":1,"bogus_field":3}`,
		`not json`,
	} {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestStreamEmitsNDJSONUntilDone(t *testing.T) {
	_, srv, _ := newTestDaemon(t, t.TempDir())
	st := submitJob(t, srv.URL, tinySpecJSON)

	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var last report.ProgressSnapshot
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
	}
	if lines < 2 {
		t.Fatalf("stream produced %d lines, want progress events", lines)
	}
	if last.State != "done" || last.ChunksDone != last.ChunksTotal {
		t.Fatalf("final event %+v", last)
	}
}

func TestMetricsReportCacheEffectiveness(t *testing.T) {
	_, srv, _ := newTestDaemon(t, t.TempDir())

	st1 := submitJob(t, srv.URL, tinySpecJSON)
	waitDone(t, srv.URL, st1.ID)
	m := fetchMetrics(t, srv.URL)
	if m.CachePuts != 5 {
		t.Fatalf("cache puts = %d, want 5", m.CachePuts)
	}

	// Resubmitting the identical spec must be served almost entirely from
	// cache: >= 90% of lookups hit.
	st2 := submitJob(t, srv.URL, tinySpecJSON)
	fin := waitDone(t, srv.URL, st2.ID)
	if fin.CacheHits != len(fin.Chunks) {
		t.Fatalf("resubmission cache hits = %d/%d", fin.CacheHits, len(fin.Chunks))
	}
	m = fetchMetrics(t, srv.URL)
	if m.CacheHitRate < 0.4 { // 5 misses then 5 hits across both jobs
		t.Fatalf("overall hit rate = %v", m.CacheHitRate)
	}
	if m.CachePuts != 5 {
		t.Fatalf("resubmission recomputed chunks: puts = %d", m.CachePuts)
	}
	if m.Jobs != 2 || m.Pending != 0 {
		t.Fatalf("metrics %+v", m)
	}
	for _, ph := range []string{"profile", "gate", "software"} {
		if m.PhaseSec[ph] <= 0 {
			t.Fatalf("phase %s has no recorded time: %+v", ph, m.PhaseSec)
		}
	}
}

// TestKillAndResumeByteIdentical is the subsystem's core guarantee: a
// daemon killed mid-campaign resumes from checkpoints after restart and
// produces artifacts byte-identical to an uninterrupted run, recomputing
// only chunks that never completed.
func TestKillAndResumeByteIdentical(t *testing.T) {
	// Reference run: uninterrupted daemon over its own state directory.
	_, refSrv, _ := newTestDaemon(t, t.TempDir())
	refSt := submitJob(t, refSrv.URL, tinySpecJSON)
	refFinal := waitDone(t, refSrv.URL, refSt.ID)
	reference := map[string][]byte{}
	for _, name := range refFinal.Artifacts {
		reference[name] = fetchArtifact(t, refSrv.URL, refSt.ID, name)
	}

	// Victim run: same spec, but the daemon dies after the first chunk
	// completes. Stop() cancels at a chunk boundary — exactly what a
	// SIGKILL between checkpoints leaves behind.
	dir := t.TempDir()
	sched1, srv1, cancel1 := newTestDaemon(t, dir)
	st := submitJob(t, srv1.URL, tinySpecJSON)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if js := getJob(t, srv1.URL, st.ID); js.State == jobs.StateDone {
			t.Skip("job finished before the kill; machine too fast for this race")
		} else if n := doneChunks(js); n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no chunk completed before deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel1()
	sched1.Stop()
	srv1.Close()

	interrupted := getJobDirect(t, sched1, st.ID)
	partialDone := doneChunks(interrupted)
	if partialDone == len(interrupted.Chunks) {
		t.Skip("all chunks finished before the kill")
	}

	// Restart over the same directory. Recover must requeue the job.
	sched2, srv2, _ := newTestDaemon(t, dir)
	requeued, errs := sched2.Recover()
	if len(errs) != 0 {
		t.Fatalf("recover errors: %v", errs)
	}
	if requeued != 1 {
		t.Fatalf("requeued = %d, want 1", requeued)
	}
	final := waitDone(t, srv2.URL, st.ID)

	// Chunks finished before the kill must be served from cache now.
	if final.CacheHits < partialDone {
		t.Fatalf("cache hits = %d, want >= %d completed pre-kill", final.CacheHits, partialDone)
	}
	m := fetchMetrics(t, srv2.URL)
	if m.CacheHits == 0 {
		t.Fatal("resume recorded no cache hits")
	}

	// The headline check: byte-identical artifacts.
	if len(final.Artifacts) != len(reference) {
		t.Fatalf("artifact sets differ: %v vs %d reference", final.Artifacts, len(reference))
	}
	for name, want := range reference {
		got := fetchArtifact(t, srv2.URL, st.ID, name)
		if !bytes.Equal(got, want) {
			t.Fatalf("artifact %s differs between resumed and uninterrupted runs\nresumed:  %d bytes\nreference: %d bytes",
				name, len(got), len(want))
		}
	}
}

func doneChunks(st jobs.Status) int {
	n := 0
	for _, c := range st.Chunks {
		if c.Done {
			n++
		}
	}
	return n
}

func getJobDirect(t *testing.T, s *jobs.Scheduler, id string) jobs.Status {
	t.Helper()
	st, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s missing", id)
	}
	return st
}

func TestHealthz(t *testing.T) {
	_, srv, _ := newTestDaemon(t, t.TempDir())
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}
