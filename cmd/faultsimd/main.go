// Command faultsimd serves the two-level fault-injection campaign as a
// long-running daemon: clients POST campaign specs, poll or stream job
// progress, and fetch the final artifacts over plain HTTP. Completed
// chunk results live in a content-addressed cache shared across jobs, and
// every chunk completion is checkpointed, so killing the daemon
// mid-campaign loses at most the chunks in flight — a restart resumes
// each interrupted job and reproduces byte-identical artifacts.
//
// The daemon scales out with -role: a coordinator keeps the job API and
// additionally serves the cluster lease protocol, routing every chunk to
// workers that joined with -role worker -join <url>. Artifacts stay
// byte-identical to a single-node run at any worker count, and killing a
// worker mid-campaign costs only its in-flight leases.
package main

//vetsim:instrumented

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpufaultsim/internal/cluster"
	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultsimd: ")
	addr := flag.String("addr", "127.0.0.1:8091", "listen address")
	dataDir := flag.String("data", "faultsimd-data", "state directory (checkpoints + result cache)")
	cacheBudget := flag.Int64("cache-budget", 256<<20, "result cache budget in bytes")
	jobWorkers := flag.Int("job-workers", 2, "concurrently executing jobs")
	chunkWorkers := flag.Int("chunk-workers", 0, "per-job chunk parallelism (0 = GOMAXPROCS)")
	batchWorkers := flag.Int("batch-workers", 0, "intra-campaign fault-batch workers per gate chunk (0 = GOMAXPROCS, 1 = serial); never enters cache keys — results are byte-identical at any width")
	maxPending := flag.Int("max-pending", 0, "admission limit: queued+running jobs before POST /jobs answers 429 (0 = unbounded)")
	grace := flag.Duration("grace", 30*time.Second, "drain grace period on SIGTERM")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	role := flag.String("role", "single", "single | coordinator | worker")
	join := flag.String("join", "", "coordinator base URL (worker role), e.g. http://host:8091")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "chunk lease TTL before the coordinator reassigns (coordinator role)")
	workerName := flag.String("worker-name", "", "worker identity in the cluster (worker role; default host-pid)")
	maxLeases := flag.Int("max-leases", 2, "chunks a worker requests per poll (worker role)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	st, err := store.Open(*dataDir+"/cache", *cacheBudget)
	if err != nil {
		log.Fatal(err)
	}

	if *role == "worker" {
		if *join == "" {
			log.Fatal("-role worker requires -join <coordinator-url>")
		}
		runWorker(ctx, st, *addr, *join, *workerName, *batchWorkers, *maxLeases)
		return
	}

	// Roles single and coordinator both run the scheduler and the job
	// API; the coordinator additionally routes chunks through the lease
	// ledger and serves the cluster protocol.
	var ledger *jobs.Ledger
	var coord *cluster.Coordinator
	if *role == "coordinator" {
		ledger = jobs.NewLedger(jobs.LedgerOptions{TTL: *leaseTTL})
	} else if *role != "single" {
		log.Fatalf("unknown -role %q (want single, coordinator or worker)", *role)
	}

	sched, err := jobs.New(jobs.Options{
		Dir:          *dataDir + "/jobs",
		Store:        st,
		JobWorkers:   *jobWorkers,
		ChunkWorkers: *chunkWorkers,
		BatchWorkers: *batchWorkers,
		MaxPending:   *maxPending,
		Ledger:       ledger,
	})
	if err != nil {
		log.Fatal(err)
	}

	requeued, recErrs := sched.Recover()
	for _, e := range recErrs {
		log.Printf("recover: %v", e)
	}
	if requeued > 0 {
		log.Printf("recover: resuming %d interrupted job(s)", requeued)
	}

	sched.Start(context.Background())
	if ledger != nil {
		coord, err = cluster.NewCoordinator(cluster.CoordinatorOptions{Ledger: ledger, Store: st})
		if err != nil {
			log.Fatal(err)
		}
		coord.Start(context.Background())
		log.Printf("coordinator: lease TTL %s", *leaseTTL)
	}

	srv := &http.Server{Addr: *addr, Handler: newServer(serverDeps{
		sched: sched, store: st, coord: coord, enablePprof: *enablePprof,
	})}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s as %s (data in %s)", *addr, *role, *dataDir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting jobs, let in-flight work finish
	// within the grace period (progress past it is checkpointed anyway),
	// then close the listener.
	log.Printf("shutting down, draining for up to %s", *grace)
	if sched.Drain(*grace) {
		log.Printf("drained cleanly")
	} else {
		log.Printf("grace expired; interrupted jobs will resume on restart")
	}
	if coord != nil {
		coord.Stop()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}

// runWorker joins a coordinator and computes leased chunks until
// SIGTERM. The local store deduplicates repeat chunks and caches
// dependency payloads pulled from the coordinator.
func runWorker(ctx context.Context, st *store.Store, addr, join, name string, batchWorkers, maxLeases int) {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	wk, err := cluster.NewWorker(cluster.WorkerOptions{
		Name: name, Coordinator: join, Store: st,
		BatchWorkers: batchWorkers, MaxLeases: maxLeases,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: addr, Handler: newWorkerServer(wk, st)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("worker %s joining %s (status on %s)", name, join, addr)

	runc := make(chan error, 1)
	go func() { runc <- wk.Run(ctx) }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("worker shutting down; abandoning unfinished leases to TTL reassignment")
	wk.Stop()
	<-runc
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
