// Command faultsimd serves the two-level fault-injection campaign as a
// long-running daemon: clients POST campaign specs, poll or stream job
// progress, and fetch the final artifacts over plain HTTP. Completed
// chunk results live in a content-addressed cache shared across jobs, and
// every chunk completion is checkpointed, so killing the daemon
// mid-campaign loses at most the chunks in flight — a restart resumes
// each interrupted job and reproduces byte-identical artifacts.
//
// The daemon scales out with -role: a coordinator keeps the job API and
// additionally serves the cluster lease protocol, routing every chunk to
// workers that joined with -role worker -join <url>. Artifacts stay
// byte-identical to a single-node run at any worker count, and killing a
// worker mid-campaign costs only its in-flight leases.
//
// Logs are structured: one JSON line per event on stderr, levelled with
// -log-level, every line stamped with the role (and worker identity),
// and cluster events carrying the same run/job/chunk/worker IDs the
// distributed trace uses — a log line and its span grep together.
package main

//vetsim:instrumented

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpufaultsim/internal/cluster"
	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
	"gpufaultsim/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8091", "listen address")
	dataDir := flag.String("data", "faultsimd-data", "state directory (checkpoints + result cache)")
	cacheBudget := flag.Int64("cache-budget", 256<<20, "result cache budget in bytes")
	jobWorkers := flag.Int("job-workers", 2, "concurrently executing jobs")
	chunkWorkers := flag.Int("chunk-workers", 0, "per-job chunk parallelism (0 = GOMAXPROCS)")
	batchWorkers := flag.Int("batch-workers", 0, "intra-campaign fault-batch workers per gate chunk (0 = GOMAXPROCS, 1 = serial); never enters cache keys — results are byte-identical at any width")
	maxPending := flag.Int("max-pending", 0, "admission limit: queued+running jobs before POST /jobs answers 429 (0 = unbounded)")
	grace := flag.Duration("grace", 30*time.Second, "drain grace period on SIGTERM")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	role := flag.String("role", "single", "single | coordinator | worker")
	join := flag.String("join", "", "coordinator base URL (worker role), e.g. http://host:8091")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "chunk lease TTL before the coordinator reassigns (coordinator role)")
	workerName := flag.String("worker-name", "", "worker identity in the cluster (worker role; default host-pid)")
	maxLeases := flag.Int("max-leases", 2, "chunks a worker requests per poll (worker role)")
	logLevel := flag.String("log-level", envOr("GPUFAULTSIM_LOG_LEVEL", "info"), "log verbosity: debug | info | warn | error")
	flag.Parse()

	logger := telemetry.NewLogger(os.Stderr, telemetry.ParseLogLevel(*logLevel),
		slog.String("role", *role))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	st, err := store.Open(*dataDir+"/cache", *cacheBudget)
	if err != nil {
		fatal(logger, "open store", err)
	}

	if *role == "worker" {
		if *join == "" {
			fatal(logger, "flags", errors.New("-role worker requires -join <coordinator-url>"))
		}
		runWorker(ctx, logger, st, *addr, *join, *workerName, *batchWorkers, *maxLeases)
		return
	}

	// Roles single and coordinator both run the scheduler and the job
	// API; the coordinator additionally routes chunks through the lease
	// ledger and serves the cluster protocol. Both own the job traces,
	// so the process flight recorder answers to "coordinator".
	telemetry.DefaultRecorder().SetOrigin("coordinator")
	var ledger *jobs.Ledger
	var coord *cluster.Coordinator
	if *role == "coordinator" {
		ledger = jobs.NewLedger(jobs.LedgerOptions{TTL: *leaseTTL})
	} else if *role != "single" {
		fatal(logger, "flags", fmt.Errorf("unknown -role %q (want single, coordinator or worker)", *role))
	}

	sched, err := jobs.New(jobs.Options{
		Dir:          *dataDir + "/jobs",
		Store:        st,
		JobWorkers:   *jobWorkers,
		ChunkWorkers: *chunkWorkers,
		BatchWorkers: *batchWorkers,
		MaxPending:   *maxPending,
		Ledger:       ledger,
	})
	if err != nil {
		fatal(logger, "scheduler", err)
	}

	requeued, recErrs := sched.Recover()
	for _, e := range recErrs {
		logger.Warn("recover", "error", e)
	}
	if requeued > 0 {
		logger.Info("recover: resuming interrupted jobs", "jobs", requeued)
	}

	sched.Start(context.Background())
	if ledger != nil {
		coord, err = cluster.NewCoordinator(cluster.CoordinatorOptions{
			Ledger: ledger, Store: st, Log: logger,
		})
		if err != nil {
			fatal(logger, "coordinator", err)
		}
		coord.Start(context.Background())
		logger.Info("coordinator up", "lease_ttl", leaseTTL.String())
	}

	srv := &http.Server{Addr: *addr, Handler: newServer(serverDeps{
		sched: sched, store: st, coord: coord, enablePprof: *enablePprof,
	})}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "data", *dataDir)

	select {
	case err := <-errc:
		fatal(logger, "serve", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting jobs, let in-flight work finish
	// within the grace period (progress past it is checkpointed anyway),
	// then close the listener.
	logger.Info("shutting down, draining", "grace", grace.String())
	if sched.Drain(*grace) {
		logger.Info("drained cleanly")
	} else {
		logger.Warn("grace expired; interrupted jobs will resume on restart")
	}
	if coord != nil {
		coord.Stop()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "error", err)
	}
}

// runWorker joins a coordinator and computes leased chunks until
// SIGTERM. The local store deduplicates repeat chunks and caches
// dependency payloads pulled from the coordinator.
func runWorker(ctx context.Context, logger *slog.Logger, st *store.Store, addr, join, name string, batchWorkers, maxLeases int) {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	telemetry.DefaultRecorder().SetOrigin(name)
	// NewWorker bakes the worker attr into its own logger, so pass the
	// untagged one and tag only main's lines here.
	wk, err := cluster.NewWorker(cluster.WorkerOptions{
		Name: name, Coordinator: join, Store: st,
		BatchWorkers: batchWorkers, MaxLeases: maxLeases,
		Log: logger,
	})
	logger = logger.With(slog.String("worker", name))
	if err != nil {
		fatal(logger, "worker", err)
	}

	srv := &http.Server{Addr: addr, Handler: newWorkerServer(wk, st)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("worker joining", "coordinator", join, "addr", addr)

	runc := make(chan error, 1)
	go func() { runc <- wk.Run(ctx) }()

	select {
	case err := <-errc:
		fatal(logger, "serve", err)
	case <-ctx.Done():
	}
	logger.Info("worker shutting down; abandoning unfinished leases to TTL reassignment")
	wk.Stop()
	<-runc
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "error", err)
	}
}

// envOr reads an environment default for a flag.
func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// fatal logs one structured error line and exits non-zero.
func fatal(logger *slog.Logger, what string, err error) {
	logger.Error(what, "error", err)
	os.Exit(1)
}
