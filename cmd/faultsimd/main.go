// Command faultsimd serves the two-level fault-injection campaign as a
// long-running daemon: clients POST campaign specs, poll or stream job
// progress, and fetch the final artifacts over plain HTTP. Completed
// chunk results live in a content-addressed cache shared across jobs, and
// every chunk completion is checkpointed, so killing the daemon
// mid-campaign loses at most the chunks in flight — a restart resumes
// each interrupted job and reproduces byte-identical artifacts.
package main

//vetsim:instrumented

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpufaultsim/internal/jobs"
	"gpufaultsim/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultsimd: ")
	addr := flag.String("addr", "127.0.0.1:8091", "listen address")
	dataDir := flag.String("data", "faultsimd-data", "state directory (checkpoints + result cache)")
	cacheBudget := flag.Int64("cache-budget", 256<<20, "result cache budget in bytes")
	jobWorkers := flag.Int("job-workers", 2, "concurrently executing jobs")
	chunkWorkers := flag.Int("chunk-workers", 0, "per-job chunk parallelism (0 = GOMAXPROCS)")
	batchWorkers := flag.Int("batch-workers", 0, "intra-campaign fault-batch workers per gate chunk (0 = GOMAXPROCS, 1 = serial); never enters cache keys — results are byte-identical at any width")
	grace := flag.Duration("grace", 30*time.Second, "drain grace period on SIGTERM")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	st, err := store.Open(*dataDir+"/cache", *cacheBudget)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := jobs.New(jobs.Options{
		Dir:          *dataDir + "/jobs",
		Store:        st,
		JobWorkers:   *jobWorkers,
		ChunkWorkers: *chunkWorkers,
		BatchWorkers: *batchWorkers,
	})
	if err != nil {
		log.Fatal(err)
	}

	requeued, recErrs := sched.Recover()
	for _, e := range recErrs {
		log.Printf("recover: %v", e)
	}
	if requeued > 0 {
		log.Printf("recover: resuming %d interrupted job(s)", requeued)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sched.Start(context.Background())

	srv := &http.Server{Addr: *addr, Handler: newServer(sched, *enablePprof)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (data in %s)", *addr, *dataDir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting jobs, let in-flight work finish
	// within the grace period (progress past it is checkpointed anyway),
	// then close the listener.
	log.Printf("shutting down, draining for up to %s", *grace)
	if sched.Drain(*grace) {
		log.Printf("drained cleanly")
	} else {
		log.Printf("grace expired; interrupted jobs will resume on restart")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
