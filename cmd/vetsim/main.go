// Command vetsim runs the repository's invariant analyzers — the
// determinism, cachekey, telemetry and hotpath rules in
// internal/lintrules — over the packages matched by the given go-list
// patterns (default ./...). Diagnostics print one per line as
//
//	path:line:col: [rule] message
//
// and any finding makes the process exit 1, so `make verify` and CI can
// gate on a clean tree. Suppress an individual finding with
// `//vetsim:ignore <rule> <reason>` on (or directly above) the flagged
// line; a reasonless suppression is itself a finding.
//
// Usage:
//
//	go run ./cmd/vetsim ./...
//	go run ./cmd/vetsim -list
//	go run ./cmd/vetsim ./internal/jobs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gpufaultsim/internal/lintrules"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vetsim [-list] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lintrules.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lintrules.ModuleRoot()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lintrules.Load(patterns)
	if err != nil {
		fatal(err)
	}
	diags, err := lintrules.RunAnalyzers(pkgs, lintrules.All())
	if err != nil {
		fatal(err)
	}
	diags = append(diags, lintrules.CheckMarkers(root, pkgs)...)

	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && filepath.IsAbs(pos.Filename) {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vetsim: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Printf("vetsim: %d package(s) clean\n", len(pkgs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vetsim:", err)
	os.Exit(2)
}
