//go:build race

package main

// See race_off.go.
const raceEnabled = true
