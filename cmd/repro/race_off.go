//go:build !race

package main

// raceEnabled reports whether the binary was built with -race. The golden
// end-to-end test skips under the race detector: it would multiply an
// already long default-scale campaign severalfold without adding coverage
// the dedicated -race tests don't have.
const raceEnabled = false
