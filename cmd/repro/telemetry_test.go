package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gpufaultsim/internal/telemetry"
)

// TestTelemetryReportFlag checks the -telemetry plumbing: a run writes a
// JSON report containing the metrics snapshot and the run's span tree.
func TestTelemetryReportFlag(t *testing.T) {
	telemetry.DefaultRecorder().Reset()
	path := filepath.Join(t.TempDir(), "telemetry.json")
	var buf bytes.Buffer
	if err := run([]string{"-seed", "1", "-exhibit", "table1", "-telemetry", path}, &buf); err != nil {
		t.Fatalf("repro run failed: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("telemetry report not written: %v", err)
	}
	var rep telemetry.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	found := false
	for _, sp := range rep.Spans {
		if sp.Name == "repro" {
			found = true
			if sp.DurUS < 0 {
				t.Errorf("repro span has negative duration %d", sp.DurUS)
			}
		}
	}
	if !found {
		t.Fatalf("report has no repro root span (spans: %d)", len(rep.Spans))
	}
	if rep.Metrics.Counters == nil {
		t.Fatal("report has no metrics snapshot")
	}
}
