package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden repro output")

// Wall-clock readings are the only legitimately nondeterministic bytes in a
// repro run: the seconds columns of the speed-up accounting and the derived
// extrapolation/ratio. Everything else — every table, histogram and
// classification — is a pure function of the seed.
var (
	// The padding before the number is consumed too: %10.3g prints a
	// width that varies with the measured magnitude, and letting it into
	// the masked text would leak the timing back in as spaces.
	timingLineRe = regexp.MustCompile(`^(  (?:profiling|gate-level campaigns|error analysis|software campaigns|total \(two-level\)|gate-level-only est\.))\s+[0-9.eE+-]+ s`)
	speedupRe    = regexp.MustCompile(`\(speed-up [^)]+\)`)
)

func maskTimings(s string) string {
	lines := strings.Split(s, "\n")
	for i, ln := range lines {
		ln = timingLineRe.ReplaceAllString(ln, "${1} <time> s")
		ln = speedupRe.ReplaceAllString(ln, "(speed-up <ratio>)")
		lines[i] = ln
	}
	return strings.Join(lines, "\n")
}

// TestReproGoldenDefault locks the complete default-scale, seed-1 output of
// cmd/repro — every exhibit of the paper — byte-for-byte (timing masked).
// It is the end-to-end determinism gate: any change to the netlists, the
// profiler, either campaign engine, the classifiers or the report layer
// shows up here as a diff that must be reviewed and -update'd consciously.
func TestReproGoldenDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale campaign takes ~1 min; skipped with -short")
	}
	if raceEnabled {
		t.Skip("skipped under -race; run by the non-race golden step of make verify")
	}

	var buf bytes.Buffer
	if err := run([]string{"-seed", "1"}, &buf); err != nil {
		t.Fatalf("repro run failed: %v", err)
	}
	got := maskTimings(buf.String())

	golden := filepath.Join("testdata", "repro_default_output.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	n := min(len(gotLines), len(wantLines))
	for i := 0; i < n; i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("output diverges from golden at line %d:\n got: %q\nwant: %q\n(rerun with -update after reviewing the change)",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("output length diverges from golden: got %d lines, want %d", len(gotLines), len(wantLines))
}

// TestMaskTimings pins the masking itself so a format drift in the speed-up
// report can't silently let real timings into the golden comparison.
func TestMaskTimings(t *testing.T) {
	in := "  profiling                  0.01 s\n" +
		"  gate-level campaigns       1.47 s (22694 faults x 512 patterns)\n" +
		"  gate-level-only est.   5.22e+05 s  (speed-up 1.14e+04x)\n" +
		"  gate-level-only est.    5.2e+05 s  (speed-up 1.14e+04x)\n" +
		"  unrelated 3.14 s\n"
	want := "  profiling <time> s\n" +
		"  gate-level campaigns <time> s (22694 faults x 512 patterns)\n" +
		"  gate-level-only est. <time> s  (speed-up <ratio>)\n" +
		"  gate-level-only est. <time> s  (speed-up <ratio>)\n" +
		"  unrelated 3.14 s\n"
	if got := maskTimings(in); got != want {
		t.Errorf("maskTimings:\n got: %q\nwant: %q", got, want)
	}
}
