// Command repro regenerates every table and figure of the paper's
// evaluation in one run (or a selected exhibit), at a configurable scale.
//
//	repro                 # everything, scaled-down defaults
//	repro -exhibit fig10  # one exhibit
//	repro -scale paper    # paper-scale campaign sizes (slow)
package main

//vetsim:instrumented

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"gpufaultsim/internal/campaign"
	"gpufaultsim/internal/cnn"
	"gpufaultsim/internal/errmodel"
	"gpufaultsim/internal/gatesim"
	"gpufaultsim/internal/isa"
	"gpufaultsim/internal/mitigate"
	"gpufaultsim/internal/perfi"
	"gpufaultsim/internal/report"
	"gpufaultsim/internal/rtlfi"
	"gpufaultsim/internal/syndrome"
	"gpufaultsim/internal/telemetry"
	"gpufaultsim/internal/workloads"
)

type scale struct {
	patterns    int
	injections  int
	microValues int
	microLanes  int
	tmxmValues  int
	tmxmStride  int
}

var scales = map[string]scale{
	"quick":   {patterns: 128, injections: 20, microValues: 1, microLanes: 1, tmxmValues: 1, tmxmStride: 32},
	"default": {patterns: 512, injections: 100, microValues: 2, microLanes: 2, tmxmValues: 2, tmxmStride: 8},
	"paper":   {patterns: 4096, injections: 1000, microValues: 4, microLanes: 4, tmxmValues: 4, tmxmStride: 1},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: the golden end-to-end
// test drives it with a fixed argument list and locks its output.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "campaign seed")
	exhibit := fs.String("exhibit", "all",
		"table1|table2|table3|table4|table5|fig2|fig45|fig6|fig7|fig8|fig9|fig10|fig11|speedup|discussion|mitigation|all")
	scaleName := fs.String("scale", "default", "quick|default|paper")
	workers := fs.Int("workers", 0, "parallel workers across units and apps (0 = GOMAXPROCS)")
	batchWorkers := fs.Int("batch-workers", 0, "intra-campaign fault-batch workers per gate-level campaign (0 = GOMAXPROCS, 1 = serial); results are byte-identical at any width")
	engineName := fs.String("engine", "event", "gate-level simulation engine: event or full (byte-identical results)")
	telemetryPath := fs.String("telemetry", "", "write an end-of-run telemetry report (metrics + spans) to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc, ok := scales[*scaleName]
	if !ok {
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if _, err := gatesim.ParseEngine(*engineName); err != nil {
		return err
	}
	runSpan := telemetry.StartSpan("repro")
	defer runSpan.End()
	if *telemetryPath != "" {
		defer func() {
			runSpan.End()
			if err := telemetry.WriteReportFile(*telemetryPath); err != nil {
				fmt.Fprintf(os.Stderr, "repro: telemetry report: %v\n", err)
			}
		}()
	}
	want := func(names ...string) bool {
		if *exhibit == "all" {
			return true
		}
		for _, n := range names {
			if n == *exhibit {
				return true
			}
		}
		return false
	}
	section := func(s string) {
		fmt.Fprintln(w, strings.Repeat("=", 72))
		fmt.Fprintln(w, s)
	}

	if want("table1") {
		section("")
		fmt.Fprint(w, report.Table1(cnn.Evaluation15()))
	}

	// RTL study: Figure 2, Figures 4-5, Figure 6, Table 2/Figure 7, Figure 8.
	if want("fig2", "fig45") {
		sp := runSpan.Child("rtl:micro")
		defer sp.End()
		section("")
		mcfg := rtlfi.MicroConfig{Seed: *seed, ValuesPerRange: sc.microValues,
			LanesSampled: sc.microLanes}
		rows, syn := rtlfi.Figure2(mcfg)
		if want("fig2") {
			fmt.Fprint(w, report.Fig2(rows))
			fmt.Fprintln(w)
		}
		if want("fig45") {
			fmt.Fprintln(w, "Figures 4-5 — fault syndrome (relative error) distributions")
			for _, op := range []isa.Opcode{isa.OpFADD, isa.OpFMUL, isa.OpFFMA,
				isa.OpIADD, isa.OpIMUL, isa.OpIMAD} {
				for _, m := range rtlfi.ModulesFor(op) {
					pairs := syn[[2]int{int(op), int(m)}]
					res := rtlfi.RelativeErrors(pairs, op.Unit() == isa.UnitFP32)
					if len(res) == 0 {
						continue
					}
					fmt.Fprint(w, report.SyndromeHistogram(
						fmt.Sprintf("%v / %v", op, m), syndrome.Build(res)))
					if fit, err := syndrome.Fit(res); err == nil {
						_, p, swErr := syndrome.ShapiroWilk(res[:min(len(res), 5000)])
						fmt.Fprintf(w, "  power-law fit: alpha=%.2f xmin=%.3g KS=%.3f",
							fit.Alpha, fit.Xmin, fit.KS)
						if swErr == nil {
							fmt.Fprintf(w, "  Shapiro-Wilk p=%.3g (non-Gaussian: %v)", p, p < 0.05)
						}
						fmt.Fprintln(w)
					}
				}
			}
		}
	}

	if want("fig6", "fig7", "table2", "fig8") {
		sp := runSpan.Child("rtl:tmxm")
		section("")
		st := rtlfi.RunTMxMStudy(rtlfi.TMxMConfig{Seed: *seed,
			ValuesPerTile: sc.tmxmValues, SiteStride: sc.tmxmStride})
		sp.End()
		if want("fig6") {
			fmt.Fprint(w, report.Fig6(st.Rows))
			fmt.Fprintln(w)
		}
		if want("fig7", "table2") {
			fmt.Fprint(w, report.Table2(st))
			fmt.Fprintln(w)
		}
		if want("fig8") {
			fmt.Fprint(w, report.Fig8(st))
		}
	}

	// Two-level methodology: Table 3, Table 4, Table 5, Figure 9, Figures
	// 10-11, speed-up accounting.
	if want("table3", "table4", "table5", "fig9", "fig10", "fig11", "speedup", "discussion") {
		sp := runSpan.Child("exhibits:twolevel")
		section("")
		res, err := campaign.RunTwoLevel(campaign.TwoLevelConfig{
			Seed:         *seed,
			MaxPatterns:  sc.patterns,
			Injections:   sc.injections,
			EvalApps:     cnn.Evaluation15(),
			Workers:      *workers,
			BatchWorkers: *batchWorkers,
			Engine:       *engineName,
		})
		sp.End()
		if err != nil {
			return err
		}
		if want("table3") {
			fmt.Fprint(w, report.Table3(res.Profile))
			fmt.Fprintln(w)
		}
		if want("table4") {
			fmt.Fprint(w, report.Table4(res.Summaries()))
			fmt.Fprintln(w)
		}
		if want("table5") {
			fmt.Fprint(w, report.Table5(res.UnitReports()))
			fmt.Fprintln(w)
		}
		if want("fig9") {
			fmt.Fprint(w, report.Fig9(res.Collectors(), res.FaultTotals()))
			fmt.Fprintln(w)
		}
		if want("fig10") {
			fmt.Fprint(w, report.Fig10(res.Apps, errmodel.Injectable()))
			fmt.Fprintln(w)
		}
		if want("fig11") {
			fmt.Fprint(w, report.Fig11(perfi.Average(res.Apps), errmodel.Injectable()))
			fmt.Fprintln(w)
		}
		if want("speedup") {
			fmt.Fprint(w, res.Timing.Report())
		}
		if want("discussion") {
			fmt.Fprint(w, report.Discussion(report.CorrelateUnits(
				res.Collectors(), res.FaultTotals(), perfi.Average(res.Apps))))
			fmt.Fprintln(w)
		}
	}

	// Extension: the Section-6.3 mitigation proposal, measured.
	if want("mitigation") {
		sp := runSpan.Child("mitigation")
		defer sp.End()
		section("")
		for _, name := range []string{"mxm", "gemm"} {
			var wl workloads.Workload
			for _, cand := range cnn.Evaluation15() {
				if cand.Name() == name {
					wl = cand
				}
			}
			dets, err := mitigate.Evaluate(wl, mitigate.Config{
				Injections: sc.injections / 2, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Fprintln(w, mitigate.Render(name, dets))
		}
	}
	return nil
}
