// Command repro regenerates every table and figure of the paper's
// evaluation in one run (or a selected exhibit), at a configurable scale.
//
//	repro                 # everything, scaled-down defaults
//	repro -exhibit fig10  # one exhibit
//	repro -scale paper    # paper-scale campaign sizes (slow)
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"gpufaultsim/internal/campaign"
	"gpufaultsim/internal/cnn"
	"gpufaultsim/internal/errmodel"
	"gpufaultsim/internal/isa"
	"gpufaultsim/internal/mitigate"
	"gpufaultsim/internal/perfi"
	"gpufaultsim/internal/report"
	"gpufaultsim/internal/rtlfi"
	"gpufaultsim/internal/syndrome"
	"gpufaultsim/internal/workloads"
)

type scale struct {
	patterns    int
	injections  int
	microValues int
	microLanes  int
	tmxmValues  int
	tmxmStride  int
}

var scales = map[string]scale{
	"quick":   {patterns: 128, injections: 20, microValues: 1, microLanes: 1, tmxmValues: 1, tmxmStride: 32},
	"default": {patterns: 512, injections: 100, microValues: 2, microLanes: 2, tmxmValues: 2, tmxmStride: 8},
	"paper":   {patterns: 4096, injections: 1000, microValues: 4, microLanes: 4, tmxmValues: 4, tmxmStride: 1},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	seed := flag.Int64("seed", 1, "campaign seed")
	exhibit := flag.String("exhibit", "all",
		"table1|table2|table3|table4|table5|fig2|fig45|fig6|fig7|fig8|fig9|fig10|fig11|speedup|discussion|mitigation|all")
	scaleName := flag.String("scale", "default", "quick|default|paper")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	sc, ok := scales[*scaleName]
	if !ok {
		log.Fatalf("unknown scale %q", *scaleName)
	}
	want := func(names ...string) bool {
		if *exhibit == "all" {
			return true
		}
		for _, n := range names {
			if n == *exhibit {
				return true
			}
		}
		return false
	}
	section := func(s string) {
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(s)
	}

	if want("table1") {
		section("")
		fmt.Print(report.Table1(cnn.Evaluation15()))
	}

	// RTL study: Figure 2, Figures 4-5, Figure 6, Table 2/Figure 7, Figure 8.
	if want("fig2", "fig45") {
		section("")
		mcfg := rtlfi.MicroConfig{Seed: *seed, ValuesPerRange: sc.microValues,
			LanesSampled: sc.microLanes}
		rows, syn := rtlfi.Figure2(mcfg)
		if want("fig2") {
			fmt.Print(report.Fig2(rows))
			fmt.Println()
		}
		if want("fig45") {
			fmt.Println("Figures 4-5 — fault syndrome (relative error) distributions")
			for _, op := range []isa.Opcode{isa.OpFADD, isa.OpFMUL, isa.OpFFMA,
				isa.OpIADD, isa.OpIMUL, isa.OpIMAD} {
				for _, m := range rtlfi.ModulesFor(op) {
					pairs := syn[[2]int{int(op), int(m)}]
					res := rtlfi.RelativeErrors(pairs, op.Unit() == isa.UnitFP32)
					if len(res) == 0 {
						continue
					}
					fmt.Print(report.SyndromeHistogram(
						fmt.Sprintf("%v / %v", op, m), syndrome.Build(res)))
					if fit, err := syndrome.Fit(res); err == nil {
						_, p, swErr := syndrome.ShapiroWilk(res[:min(len(res), 5000)])
						fmt.Printf("  power-law fit: alpha=%.2f xmin=%.3g KS=%.3f",
							fit.Alpha, fit.Xmin, fit.KS)
						if swErr == nil {
							fmt.Printf("  Shapiro-Wilk p=%.3g (non-Gaussian: %v)", p, p < 0.05)
						}
						fmt.Println()
					}
				}
			}
		}
	}

	if want("fig6", "fig7", "table2", "fig8") {
		section("")
		st := rtlfi.RunTMxMStudy(rtlfi.TMxMConfig{Seed: *seed,
			ValuesPerTile: sc.tmxmValues, SiteStride: sc.tmxmStride})
		if want("fig6") {
			fmt.Print(report.Fig6(st.Rows))
			fmt.Println()
		}
		if want("fig7", "table2") {
			fmt.Print(report.Table2(st))
			fmt.Println()
		}
		if want("fig8") {
			fmt.Print(report.Fig8(st))
		}
	}

	// Two-level methodology: Table 3, Table 4, Table 5, Figure 9, Figures
	// 10-11, speed-up accounting.
	if want("table3", "table4", "table5", "fig9", "fig10", "fig11", "speedup", "discussion") {
		section("")
		res, err := campaign.RunTwoLevel(campaign.TwoLevelConfig{
			Seed:        *seed,
			MaxPatterns: sc.patterns,
			Injections:  sc.injections,
			EvalApps:    cnn.Evaluation15(),
			Workers:     *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		if want("table3") {
			fmt.Print(report.Table3(res.Profile))
			fmt.Println()
		}
		if want("table4") {
			fmt.Print(report.Table4(res.Summaries()))
			fmt.Println()
		}
		if want("table5") {
			fmt.Print(report.Table5(res.UnitReports()))
			fmt.Println()
		}
		if want("fig9") {
			fmt.Print(report.Fig9(res.Collectors(), res.FaultTotals()))
			fmt.Println()
		}
		if want("fig10") {
			fmt.Print(report.Fig10(res.Apps, errmodel.Injectable()))
			fmt.Println()
		}
		if want("fig11") {
			fmt.Print(report.Fig11(perfi.Average(res.Apps), errmodel.Injectable()))
			fmt.Println()
		}
		if want("speedup") {
			fmt.Print(res.Timing.Report())
		}
		if want("discussion") {
			fmt.Print(report.Discussion(report.CorrelateUnits(
				res.Collectors(), res.FaultTotals(), perfi.Average(res.Apps))))
			fmt.Println()
		}
	}

	// Extension: the Section-6.3 mitigation proposal, measured.
	if want("mitigation") {
		section("")
		for _, name := range []string{"mxm", "gemm"} {
			var w workloads.Workload
			for _, cand := range cnn.Evaluation15() {
				if cand.Name() == name {
					w = cand
				}
			}
			dets, err := mitigate.Evaluate(w, mitigate.Config{
				Injections: sc.injections / 2, Seed: *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(mitigate.Render(name, dets))
		}
	}
}
