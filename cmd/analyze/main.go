// Command analyze runs the static-analysis layer without simulating a
// single cycle: SCOAP-style testability, structural fault collapsing and
// lint over the gate-level units, and control-flow/liveness analysis over
// kernel assembly files. Its JSON output is deterministic for a given
// input, so reports can be diffed and pinned.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpufaultsim/internal/analyze"
	"gpufaultsim/internal/kasm"
	"gpufaultsim/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	unitName := flag.String("unit", "all", "unit to analyze: wsc, fetch, decoder, all, none")
	kasmPath := flag.String("kasm", "", "also analyze a kernel-assembly file (disassembly syntax)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of text")
	flag.Parse()

	var targets []*units.Unit
	if *unitName != "none" {
		for _, u := range units.All() {
			if *unitName == "all" || u.Name == *unitName {
				targets = append(targets, u)
			}
		}
		if len(targets) == 0 {
			log.Fatalf("unknown unit %q", *unitName)
		}
	}

	emit := func(text string, jsonBytes []byte, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			os.Stdout.Write(jsonBytes)
			fmt.Println()
		} else {
			fmt.Print(text)
		}
	}

	for _, u := range targets {
		r := analyze.ReportUnit(u.Name, u.NL)
		j, err := r.JSON()
		emit(r.Text(), j, err)
	}

	if *kasmPath != "" {
		src, err := os.ReadFile(*kasmPath)
		if err != nil {
			log.Fatal(err)
		}
		p, err := kasm.Parse(*kasmPath, string(src))
		if err != nil {
			log.Fatal(err)
		}
		r := analyze.ReportProgram(p)
		j, err := r.JSON()
		emit(r.Text(), j, err)
	}
}
