module gpufaultsim

go 1.22
