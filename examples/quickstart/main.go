// Quickstart: run a workload on the simulated GPU, inject one permanent
// error, and classify the outcome — the minimal end-to-end use of the
// library's public pieces (gpu device, workloads, error models, injector).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpufaultsim/internal/errmodel"
	"gpufaultsim/internal/gpu"
	"gpufaultsim/internal/perfi"
	"gpufaultsim/internal/workloads"
)

func main() {
	log.SetFlags(0)

	// 1. Build a workload job (vectoradd: out[i] = a[i]+b[i], 256 elems).
	w := workloads.VectorAdd{}
	job := w.Build(rand.New(rand.NewSource(42)))

	// 2. Golden (fault-free) run on a simulated GPU.
	dev := gpu.NewDevice(gpu.DefaultConfig())
	golden, err := job.Run(dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d warp-instructions issued, trap=%v\n",
		golden.Issues, golden.Trap)

	// 3. Describe a permanent hardware error: an Incorrect Active Thread
	//    (IAT) defect on SM0/PPB0 that corrupts lane 5's thread index.
	desc := errmodel.Descriptor{
		Model:      errmodel.IAT,
		Warps:      []int{0},
		Threads:    1 << 5,
		BitErrMask: 0x2,
	}
	fmt.Printf("injecting: %v\n", desc)

	// 4. Faulty run with the injector hooked into the device.
	fdev := gpu.NewDevice(gpu.DefaultConfig())
	fdev.AddHook(perfi.New(desc, rand.New(rand.NewSource(1))))
	faulty, err := job.Run(fdev)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Classify: Masked, SDC or DUE.
	outcome := workloads.Classify(golden.Output, faulty)
	fmt.Printf("outcome: %v\n", outcome)
	if outcome == workloads.OutcomeSDC {
		bad := workloads.CorruptedElements(golden.Output, faulty.Output)
		fmt.Printf("corrupted output elements: %v\n", bad)
	}
}
