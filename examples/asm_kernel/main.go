// asm_kernel: write a kernel as SASS-like text, run it on the simulated
// GPU, inject a permanent scheduler error, and use the trace diff to watch
// the corruption propagate instruction by instruction.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"gpufaultsim/internal/errmodel"
	"gpufaultsim/internal/gpu"
	"gpufaultsim/internal/kasm"
	"gpufaultsim/internal/perfi"
	"gpufaultsim/internal/trace"
	"gpufaultsim/internal/workloads"
)

// saxpy: y[i] = a*x[i] + y[i] for i < n.
// Params: 0=xBase 1=yBase 2=n 3=aBits.
const saxpySrc = `
	// global thread id
	S2R R0, SR_CTAID.X
	S2R R1, SR_NTID.X
	IMUL R0, R0, R1
	S2R R1, SR_TID.X
	IADD R0, R0, R1
	// bounds guard
	LDC R1, [RZ+2]
	ISETP.GE P0, R0, R1
	@P0 BRA done
	// y[i] = a*x[i] + y[i]
	LDC R2, [RZ+0]      // xBase
	LDC R3, [RZ+1]      // yBase
	LDC R4, [RZ+3]      // a (float bits)
	IADD R5, R2, R0
	GLD R6, [R5+0]      // x[i]
	IADD R7, R3, R0
	GLD R8, [R7+0]      // y[i]
	FFMA R8, R4, R6, R8
	GST [R7+0], R8
done:
	EXIT
`

func main() {
	log.SetFlags(0)
	prog, err := kasm.Parse("saxpy", saxpySrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("assembled kernel:")
	fmt.Print(prog.Disassemble())

	const n = 128
	dev := gpu.NewDevice(gpu.DefaultConfig())
	for i := 0; i < n; i++ {
		dev.Global[i] = floatBits(float32(i))       // x
		dev.Global[n+i] = floatBits(float32(2 * i)) // y
	}
	lc := gpu.LaunchConfig{
		Grid:   gpu.Dim3{X: 2},
		Block:  gpu.Dim3{X: 64},
		Params: []uint32{0, n, n, floatBits(0.5)},
	}

	rec := &trace.Recorder{}
	dev.AddHook(rec)
	res, err := dev.Launch(prog, lc)
	if err != nil || res.Hung() {
		log.Fatalf("golden launch failed: %v %v", err, res)
	}
	golden := dev.ReadGlobal(n, n)
	fmt.Printf("\ngolden: %d warp-instructions; y[3] = %v (want %v)\n",
		res.Issues, fromBits(golden[3]), 0.5*3+6)

	// Permanent IAT defect: lane 5 of warp 1 reads a wrong thread index
	// (tid ^ 4), so it redoes another thread's element and its own is
	// never updated — a silent data corruption. (A warp-wide IAW with a
	// bijective index flip would mask here: every element still gets
	// computed by *somebody*. Try it.)
	desc := errmodel.Descriptor{Model: errmodel.IAT, Warps: []int{1},
		Threads: 1 << 5, BitErrMask: 4}
	fdev := gpu.NewDevice(gpu.DefaultConfig())
	for i := 0; i < n; i++ {
		fdev.Global[i] = floatBits(float32(i))
		fdev.Global[n+i] = floatBits(float32(2 * i))
	}
	frec := &trace.Recorder{}
	fdev.AddHook(perfi.New(desc, rand.New(rand.NewSource(1))))
	fdev.AddHook(frec)
	fres, err := fdev.Launch(prog, lc)
	if err != nil {
		log.Fatal(err)
	}
	faulty := fdev.ReadGlobal(n, n)

	outcome := workloads.Classify(golden, &workloads.RunResult{
		Trap: fres.Trap, Output: faulty,
	})
	fmt.Printf("faulty (%v): outcome %v, corrupted elements %v\n\n",
		desc, outcome, workloads.CorruptedElements(golden, faulty))

	d := trace.Diff(rec.Events, frec.Events)
	fmt.Print(trace.Render(d, rec.Events, frec.Events, 3))
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func fromBits(u uint32) float32 { return math.Float32frombits(u) }
