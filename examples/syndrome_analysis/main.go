// syndrome_analysis: characterize the fault syndrome of a functional unit
// (Section 4.3 of the paper): run the FMUL micro-benchmark campaign,
// histogram the relative errors, fit the power law of Equation 1, test for
// normality, and draw synthetic syndromes from the fitted generator.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpufaultsim/internal/isa"
	"gpufaultsim/internal/report"
	"gpufaultsim/internal/rtlfi"
	"gpufaultsim/internal/syndrome"
)

func main() {
	log.SetFlags(0)

	// RTL fault-injection campaign: all FP32 datapath sites against FMUL.
	row, pairs := rtlfi.MicroAVF(isa.OpFMUL, rtlfi.ModFP32, rtlfi.MicroConfig{
		Seed: 11, ValuesPerRange: 4, LanesSampled: 4,
	})
	fmt.Printf("FMUL/FP32 campaign: %d injections, AVF %.1f%% "+
		"(SDC single %.1f%%, multi %.1f%%, DUE %.1f%%)\n\n",
		row.Injections, 100*row.AVF(), 100*row.SDCSingle,
		100*row.SDCMulti, 100*row.DUE)

	res := rtlfi.RelativeErrors(pairs, true)
	fmt.Print(report.SyndromeHistogram("FMUL relative-error syndrome", syndrome.Build(res)))

	fit, err := syndrome.Fit(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npower-law fit (Clauset): alpha=%.3f xmin=%.4g KS=%.4f (tail n=%d)\n",
		fit.Alpha, fit.Xmin, fit.KS, fit.NTail)

	n := len(res)
	if n > 5000 {
		n = 5000
	}
	if w, p, err := syndrome.ShapiroWilk(res[:n]); err == nil {
		fmt.Printf("Shapiro-Wilk: W=%.4f p=%.3g -> non-Gaussian: %v "+
			"(the paper: all syndrome distributions reject normality)\n", w, p, p < 0.05)
	}

	// Equation 1: the generator used to inject syndromes in software.
	rng := rand.New(rand.NewSource(99))
	fmt.Println("\n10 synthetic syndromes drawn from the fitted generator:")
	for i := 0; i < 10; i++ {
		fmt.Printf("  %.4g\n", fit.Sample(rng))
	}
}
