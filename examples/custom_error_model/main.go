// custom_error_model: extend the injector with a user-defined permanent
// error model. The paper's methodology is explicitly designed to be
// extended to other units and fault models; here we model a "stuck result
// bus bit" in one PPB — every FP32 result produced on the sub-partition
// has one bit of its value forced — and evaluate it against GEMM.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpufaultsim/internal/gpu"
	"gpufaultsim/internal/isa"
	"gpufaultsim/internal/workloads"
)

// stuckResultBus forces bit Bit of every FP32 result written on PPB 0 to
// Value. It implements gpu.Hook directly — the same interface the built-in
// 13 error models use.
type stuckResultBus struct {
	Bit   int
	Value bool
}

func (h *stuckResultBus) Before(ctx *gpu.InstrCtx) {}

func (h *stuckResultBus) After(ctx *gpu.InstrCtx) {
	in := ctx.Instr
	if ctx.W.PPB != 0 || in.Op.Unit() != isa.UnitFP32 || !in.Op.WritesReg() {
		return
	}
	for lane := 0; lane < isa.WarpSize; lane++ {
		if ctx.ExecMask&(1<<lane) == 0 {
			continue
		}
		v := ctx.W.Reg(lane, in.Rd)
		if h.Value {
			v |= 1 << h.Bit
		} else {
			v &^= 1 << h.Bit
		}
		ctx.W.SetReg(lane, in.Rd, v)
	}
}

func main() {
	log.SetFlags(0)
	job := workloads.GEMM{}.Build(rand.New(rand.NewSource(3)))
	dev := gpu.NewDevice(gpu.DefaultConfig())
	golden, err := job.Run(dev)
	if err != nil || golden.Hung() {
		log.Fatalf("golden run failed: %v %v", err, golden)
	}

	fmt.Println("stuck result-bus bit on PPB0, evaluated on gemm:")
	fmt.Printf("%4s %8s %14s\n", "bit", "outcome", "corrupted elems")
	for _, bit := range []int{0, 11, 23, 30, 31} {
		fdev := gpu.NewDevice(gpu.DefaultConfig())
		fdev.AddHook(&stuckResultBus{Bit: bit, Value: true})
		rr, err := job.Run(fdev)
		if err != nil {
			log.Fatal(err)
		}
		outcome := workloads.Classify(golden.Output, rr)
		n := 0
		if outcome == workloads.OutcomeSDC {
			n = len(workloads.CorruptedElements(golden.Output, rr.Output))
		}
		fmt.Printf("%4d %8v %14d\n", bit, outcome, n)
	}
	fmt.Println("\nhigh mantissa/exponent bits corrupt everything the PPB computes;")
	fmt.Println("low mantissa bits are frequently masked by rounding and data")
}
