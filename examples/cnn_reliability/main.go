// cnn_reliability: evaluate how permanent faults in the GPU's parallelism
// management units affect a convolutional network — the paper's headline
// use case. For each error model, injects a batch of errors into LeNet
// inference and reports bit-level SDCs, DUEs, and *critical* SDCs (the
// classification actually flips).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpufaultsim/internal/cnn"
	"gpufaultsim/internal/errmodel"
	"gpufaultsim/internal/gpu"
	"gpufaultsim/internal/perfi"
	"gpufaultsim/internal/workloads"
)

func main() {
	log.SetFlags(0)
	const injections = 20
	seed := int64(7)

	net := cnn.LeNet{Digit: 3}
	job := net.Build(rand.New(rand.NewSource(seed)))
	cfg := gpu.DefaultConfig()
	cfg.GlobalMemWords = job.Footprint() + 64
	dev := gpu.NewDevice(cfg)
	golden, err := job.Run(dev)
	if err != nil || golden.Hung() {
		log.Fatalf("golden inference failed: %v %v", err, golden)
	}
	fmt.Printf("LeNet golden inference: class=%d (%d warp-instructions)\n\n",
		cnn.Top1(golden.Output), golden.Issues)

	fcfg := cfg
	fcfg.MaxIssues = golden.Issues*8 + 10000
	fdev := gpu.NewDevice(fcfg)

	fmt.Printf("%-6s %8s %8s %8s %12s\n", "model", "masked", "SDC", "DUE", "criticalSDC")
	rng := rand.New(rand.NewSource(seed))
	for _, m := range errmodel.Injectable() {
		var masked, sdc, due, critical int
		for i := 0; i < injections; i++ {
			d := errmodel.Random(m, rng, 8, cfg.PPBsPerSM)
			fdev.ClearHooks()
			fdev.AddHook(perfi.New(d, rand.New(rand.NewSource(seed+int64(i)))))
			rr, err := job.Run(fdev)
			if err != nil {
				log.Fatal(err)
			}
			switch workloads.Classify(golden.Output, rr) {
			case workloads.OutcomeMasked:
				masked++
			case workloads.OutcomeDUE:
				due++
			case workloads.OutcomeSDC:
				sdc++
				if cnn.CriticalSDCLeNet(golden.Output, rr.Output) {
					critical++
				}
			}
		}
		fmt.Printf("%-6v %7d%% %7d%% %7d%% %11d%%\n", m,
			100*masked/injections, 100*sdc/injections,
			100*due/injections, 100*critical/injections)
	}
	fmt.Println("\ncriticalSDC = SDCs that change the predicted class " +
		"(the paper's misdetection criterion)")
}
